package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// benchTrendCompare diffs the per-experiment wall-clock times of two
// -bench-json snapshots ("old.json,new.json") and returns an error when
// any experiment present in both slowed down by more than threshold
// percent. Experiments that appear in only one snapshot are reported but
// never fail the comparison — a renamed or newly added experiment is not
// a regression. Timings below a tenth of a second are skipped: at that
// scale scheduler noise dwarfs any real trend.
func benchTrendCompare(w io.Writer, spec string, threshold float64) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-bench-trend wants old.json,new.json, got %q", spec)
	}
	oldB, err := readBench(parts[0])
	if err != nil {
		return err
	}
	newB, err := readBench(parts[1])
	if err != nil {
		return err
	}
	if oldB.Quick != newB.Quick {
		return fmt.Errorf("snapshots ran at different scales (old quick=%v, new quick=%v); trends only compare like with like", oldB.Quick, newB.Quick)
	}

	names := make([]string, 0, len(oldB.Experiments))
	for name := range oldB.Experiments {
		names = append(names, name)
	}
	sort.Strings(names)

	const minSeconds = 0.1
	var regressions []string
	fmt.Fprintf(w, "bench trend (%s -> %s, threshold %+.0f%%):\n", parts[0], parts[1], threshold)
	for _, name := range names {
		oldS := oldB.Experiments[name]
		newS, ok := newB.Experiments[name]
		if !ok {
			fmt.Fprintf(w, "  %-12s %8.3fs -> (gone)\n", name, oldS)
			continue
		}
		if oldS < minSeconds || newS < minSeconds {
			fmt.Fprintf(w, "  %-12s %8.3fs -> %8.3fs (below noise floor, skipped)\n", name, oldS, newS)
			continue
		}
		delta := (newS - oldS) / oldS * 100
		mark := ""
		if delta > threshold {
			mark = "  REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s %+.1f%%", name, delta))
		}
		fmt.Fprintf(w, "  %-12s %8.3fs -> %8.3fs (%+.1f%%)%s\n", name, oldS, newS, delta, mark)
	}
	for name, newS := range newB.Experiments {
		if _, ok := oldB.Experiments[name]; !ok {
			fmt.Fprintf(w, "  %-12s (new) -> %8.3fs\n", name, newS)
		}
	}
	if len(regressions) > 0 {
		return fmt.Errorf("wall-clock regression past %.0f%%: %s", threshold, strings.Join(regressions, ", "))
	}
	fmt.Fprintln(w, "no regressions")
	return nil
}

func readBench(path string) (*benchSummary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b benchSummary
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return &b, nil
}
