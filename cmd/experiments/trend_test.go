package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBenchFile(t *testing.T, name string, quick bool, exps map[string]float64) string {
	t.Helper()
	b := benchSummary{Quick: quick, Experiments: exps}
	path := filepath.Join(t.TempDir(), name)
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBenchTrendPassAndFail(t *testing.T) {
	oldPath := writeBenchFile(t, "old.json", true, map[string]float64{
		"fig7+fig8": 1.0, "fig9": 0.5, "tab2": 0.01,
	})

	t.Run("within-threshold", func(t *testing.T) {
		newPath := writeBenchFile(t, "new.json", true, map[string]float64{
			"fig7+fig8": 1.15, "fig9": 0.4, "tab2": 0.09,
		})
		var buf bytes.Buffer
		if err := benchTrendCompare(&buf, oldPath+","+newPath, 20); err != nil {
			t.Fatalf("trend failed within threshold: %v\n%s", err, buf.String())
		}
		if !strings.Contains(buf.String(), "no regressions") {
			t.Fatalf("output missing verdict:\n%s", buf.String())
		}
	})

	t.Run("regression", func(t *testing.T) {
		newPath := writeBenchFile(t, "new.json", true, map[string]float64{
			"fig7+fig8": 1.5, "fig9": 0.5,
		})
		var buf bytes.Buffer
		err := benchTrendCompare(&buf, oldPath+","+newPath, 20)
		if err == nil || !strings.Contains(err.Error(), "fig7+fig8") {
			t.Fatalf("regression not flagged: err=%v\n%s", err, buf.String())
		}
		if !strings.Contains(buf.String(), "REGRESSION") {
			t.Fatalf("output missing REGRESSION marker:\n%s", buf.String())
		}
	})

	t.Run("noise-floor", func(t *testing.T) {
		// tab2 doubles but sits under 0.1 s — skipped, never a regression.
		newPath := writeBenchFile(t, "new.json", true, map[string]float64{
			"fig7+fig8": 1.0, "fig9": 0.5, "tab2": 0.02,
		})
		var buf bytes.Buffer
		if err := benchTrendCompare(&buf, oldPath+","+newPath, 20); err != nil {
			t.Fatalf("noise-floor timing flagged: %v", err)
		}
		if !strings.Contains(buf.String(), "below noise floor") {
			t.Fatalf("output missing noise-floor note:\n%s", buf.String())
		}
	})

	t.Run("scale-mismatch", func(t *testing.T) {
		newPath := writeBenchFile(t, "new.json", false, map[string]float64{"fig9": 0.5})
		var buf bytes.Buffer
		if err := benchTrendCompare(&buf, oldPath+","+newPath, 20); err == nil {
			t.Fatal("quick-vs-full comparison accepted")
		}
	})

	t.Run("bad-spec", func(t *testing.T) {
		var buf bytes.Buffer
		if err := benchTrendCompare(&buf, "only-one.json", 20); err == nil {
			t.Fatal("single-file spec accepted")
		}
	})
}

func TestVersionFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-version"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "experiments ") {
		t.Fatalf("version output = %q", buf.String())
	}
}
