// Command experiments regenerates every table and figure of the paper's
// evaluation section (Table II, Figures 6-11) plus the repository's
// ablations, printing aligned text tables and optionally CSV files.
//
// Usage:
//
//	experiments                 # run everything at full scale
//	experiments -quick          # reduced scale (seconds instead of minutes)
//	experiments -run fig7,fig8  # subset
//	experiments -csv out/       # also write CSV files
//	experiments -procs 1        # serial reference path (default: all CPUs)
//	experiments -bench-json b.json  # machine-readable runtime/coverage summary
//
// The harness fans its independent per-(size, run) tasks out over -procs
// workers; each task derives its own seeded RNG and results merge in a
// fixed order, so for a given -seed the tables and CSVs are byte-identical
// at every -procs value (wall-clock columns aside). Use -procs 1 when the
// timing columns of fig10 and the acceptance-mode ablation should be
// measured without contention.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"time"

	"github.com/chronus-sdn/chronus/internal/buildinfo"
	"github.com/chronus-sdn/chronus/internal/expt"
	"github.com/chronus-sdn/chronus/internal/metrics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced scale for a fast pass")
	seed := fs.Int64("seed", 1, "experiment seed")
	runList := fs.String("run", "all", "comma-separated subset: tab2,fig6,fig7,fig8,fig9,fig10,fig11,ablations,solver,skewadv,soak")
	csvDir := fs.String("csv", "", "directory to also write CSV tables into")
	procs := fs.Int("procs", runtime.GOMAXPROCS(0), "parallel experiment workers; 1 reproduces the serial path byte for byte")
	benchJSON := fs.String("bench-json", "", "write a machine-readable run summary (per-experiment wall time, per-table rows, audit tallies) to this file")
	benchTables := fs.String("bench-tables", "", "print the table shapes of an existing -bench-json snapshot (sorted, wall-clock-free) and exit; CI diffs two snapshots this way")
	benchTrend := fs.String("bench-trend", "", "compare two -bench-json snapshots as old.json,new.json and fail on wall-clock regressions past -trend-threshold")
	trendThreshold := fs.Float64("trend-threshold", 20, "percent slowdown per experiment that -bench-trend treats as a regression")
	version := fs.Bool("version", false, "print version and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(w, buildinfo.String("experiments"))
		return nil
	}
	if *benchTables != "" {
		return printBenchTables(w, *benchTables)
	}
	if *benchTrend != "" {
		return benchTrendCompare(w, *benchTrend, *trendThreshold)
	}
	cfg := expt.Default(*seed)
	if *quick {
		cfg = expt.Quick(*seed)
	}
	cfg.Procs = *procs
	want := map[string]bool{}
	for _, k := range strings.Split(*runList, ",") {
		want[strings.TrimSpace(k)] = true
	}
	all := want["all"]
	selected := func(k string) bool { return all || want[k] }

	bench := &benchSummary{
		Seed:        *seed,
		Quick:       *quick,
		Procs:       *procs,
		Experiments: map[string]float64{},
		Tables:      map[string]benchTable{},
	}
	emit := func(name, title string, t *metrics.Table) error {
		fmt.Fprintf(w, "\n### %s — %s\n\n%s", name, title, t)
		bench.Tables[name] = benchTable{Columns: len(t.Header), Rows: len(t.Rows)}
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*csvDir, name+".csv"), []byte(t.CSV()), 0o644)
	}
	timed := func(name string, f func() error) error {
		start := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		elapsed := time.Since(start)
		bench.Experiments[name] = elapsed.Seconds()
		fmt.Fprintf(w, "\n[%s took %v]\n", name, elapsed.Round(time.Millisecond))
		return nil
	}

	if selected("tab2") {
		if err := timed("tab2", func() error {
			res, err := expt.Table2FlowTables(cfg)
			if err != nil {
				return err
			}
			if err := emit("table2_source", "Table II: flow table at the source switch", res.Source); err != nil {
				return err
			}
			return emit("table2_dest", "Table II: flow table at the destination switch", res.Dest)
		}); err != nil {
			return err
		}
	}
	if selected("fig6") {
		if err := timed("fig6", func() error {
			res, err := expt.Fig6Bandwidth(cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "\nmonitored link: %s -> %s\n", res.Link[0], res.Link[1])
			if err := emit("fig6_series", "Fig. 6: bandwidth consumption over time", res.Table()); err != nil {
				return err
			}
			return emit("fig6_summary", "Fig. 6 summary: peaks and ground truth", res.Summary())
		}); err != nil {
			return err
		}
	}
	if selected("fig7") || selected("fig8") {
		if err := timed("fig7+fig8", func() error {
			f7, f8, err := expt.EvaluateQuality(cfg)
			if err != nil {
				return err
			}
			for _, p := range f7.Audit {
				bench.Audit.Checks += p.Checks
				bench.Audit.Agree += p.Agree
			}
			if selected("fig7") {
				if err := emit("fig7", "Fig. 7: % congestion-free update instances", f7.Table()); err != nil {
					return err
				}
			}
			if selected("fig8") {
				return emit("fig8", "Fig. 8: congested time-extended links per instance", f8.Table())
			}
			return nil
		}); err != nil {
			return err
		}
	}
	if selected("fig9") {
		if err := timed("fig9", func() error {
			res, err := expt.Fig9RuleOverhead(cfg)
			if err != nil {
				return err
			}
			return emit("fig9", "Fig. 9: forwarding rules, Chronus box plot vs TP mean", res.Table())
		}); err != nil {
			return err
		}
	}
	if selected("fig10") {
		if err := timed("fig10", func() error {
			res, err := expt.Fig10RunningTime(cfg)
			if err != nil {
				return err
			}
			return emit("fig10", "Fig. 10: scheduling time at scale (budget flags = paper's 'exceeds limit')", res.Table())
		}); err != nil {
			return err
		}
	}
	if selected("fig11") {
		if err := timed("fig11", func() error {
			res, err := expt.Fig11UpdateTimeCDF(cfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "\nn=%d: solved %d, excluded %d (infeasible), OPT budget hits %d\n",
				res.N, res.Solved, res.Excluded, res.OPTBudgetHits)
			return emit("fig11", "Fig. 11: CDF of update time (time units)", res.Table())
		}); err != nil {
			return err
		}
	}
	if selected("ablations") {
		if err := timed("ablations", func() error {
			cs, err := expt.AblationClockSkew(cfg)
			if err != nil {
				return err
			}
			if err := emit("ablation_clock", "Ablation: clock sync error vs transient violations", expt.ClockSkewTable(cs)); err != nil {
				return err
			}
			am, err := expt.AblationAcceptanceMode(cfg)
			if err != nil {
				return err
			}
			if err := emit("ablation_mode", "Ablation: exact vs fast greedy acceptance", expt.ModeTable(am)); err != nil {
				return err
			}
			em, err := expt.AblationExecutionMode(cfg)
			if err != nil {
				return err
			}
			return emit("ablation_exec", "Ablation: timed vs barrier-paced execution", expt.ExecModeTable(em))
		}); err != nil {
			return err
		}
	}
	if selected("solver") {
		if err := timed("solver", func() error {
			points, err := expt.SolverCacheBench(cfg)
			if err != nil {
				return err
			}
			return emit("solver_cache", "Solver cache: repeated same-topology solves, cold vs warm", expt.SolverCacheTable(points))
		}); err != nil {
			return err
		}
	}
	if selected("skewadv") {
		if err := timed("skewadv", func() error {
			points, err := expt.SkewAdversary(cfg)
			if err != nil {
				return err
			}
			return emit("skewadv", "Skew adversary: forecast vs observed health vs audited truth as sync error sweeps past slack", expt.SkewAdvTable(points))
		}); err != nil {
			return err
		}
	}
	if selected("soak") {
		if err := timed("soak", func() error {
			res, err := expt.Soak(cfg)
			if err != nil {
				return err
			}
			if res.Violations != 0 || res.Overcommits != 0 || res.AuditViolations != 0 {
				return fmt.Errorf("soak gate: %d joint violations, %d ledger overcommits, %d audit violations (all must be 0)",
					res.Violations, res.Overcommits, res.AuditViolations)
			}
			return emit("soak", "Admission soak: queued-up-front updates drained in waves, holds cycling, auditor online", expt.SoakTable(res))
		}); err != nil {
			return err
		}
	}
	if *benchJSON != "" {
		data, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nbench summary written to %s\n", *benchJSON)
	}
	return nil
}

// benchSummary is the -bench-json payload: enough for CI and tooling to
// track runtime and coverage per experiment without parsing the text
// tables.
type benchSummary struct {
	Seed  int64 `json:"seed"`
	Quick bool  `json:"quick"`
	Procs int   `json:"procs"`
	// Experiments maps experiment name to wall-clock seconds.
	Experiments map[string]float64 `json:"experiments"`
	// Tables maps emitted table name to its shape.
	Tables map[string]benchTable `json:"tables"`
	// Audit sums the Fig. 7 validator-versus-auditor cross-check.
	Audit struct {
		Checks int `json:"checks"`
		Agree  int `json:"agree"`
	} `json:"audit"`
}

type benchTable struct {
	Columns int `json:"columns"`
	Rows    int `json:"rows"`
}

// printBenchTables renders the deterministic part of a -bench-json
// snapshot — table names and shapes, sorted — so CI can diff a fresh run
// against the checked-in snapshot without tripping on wall-clock fields.
func printBenchTables(w io.Writer, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var bench benchSummary
	if err := json.Unmarshal(data, &bench); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}
	names := make([]string, 0, len(bench.Tables))
	for name := range bench.Tables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := bench.Tables[name]
		fmt.Fprintf(w, "%s %d cols %d rows\n", name, t.Columns, t.Rows)
	}
	return nil
}
