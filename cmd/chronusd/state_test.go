package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/chronus-sdn/chronus/internal/state"
)

// TestDaemonStateViews drives one deterministic update (seed 1,
// virtual, no wall clock) and checks every read-side view of the
// observed-state store against it: the byte-pinned /state and /drift
// goldens, the live and time-travel snapshot semantics, and the /links
// growth (rate vs peak, ?at=, ?since=, per-link timelines). One server
// boot serves all subtests — the store is read-only under GETs.
func TestDaemonStateViews(t *testing.T) {
	_, ts := newTestServerOpts(t, serverOptions{Seed: 1, Virtual: true, Wall: false})

	// Before the update the reverse links are provisioned but idle: the
	// timeline endpoint reports the topology capacity, not a 404 and not
	// a zero capacity.
	var idle state.Timeline
	getJSON(t, ts.URL+"/links/R9/R8/timeline", &idle)
	if idle.Capacity == 0 || len(idle.Points) != 0 {
		t.Fatalf("idle link timeline = %+v", idle)
	}

	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}

	t.Run("golden", func(t *testing.T) { stateGoldens(t, ts.URL) })
	t.Run("snapshot", func(t *testing.T) { stateSnapshotSemantics(t, ts.URL) })
	t.Run("links", func(t *testing.T) { linksStateViews(t, ts.URL) })
}

// stateGoldens pins the /state and /drift responses byte for byte in
// deterministic mode: one chronus update on seed 1 must always fold to
// the same observed-state snapshot and drift report.
func stateGoldens(t *testing.T, base string) {
	for _, tc := range []struct {
		path   string
		golden string
	}{
		{"/state", "state_chronus.golden"},
		{"/drift", "drift_chronus.golden"},
	} {
		r, err := http.Get(base + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join("testdata", tc.golden)
		if *updateGolden {
			if err := os.WriteFile(path, got, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("%s drifted from golden file (re-run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s", tc.path, got, want)
		}
	}
}

// stateSnapshotSemantics checks the live snapshot over a real update:
// converged overlay, installed rules, and a time-travel view that
// reconstructs the mid-schedule world.
func stateSnapshotSemantics(t *testing.T, base string) {
	var snap state.StateSnapshot
	getJSON(t, base+"/state", &snap)
	if snap.Run != 1 || snap.TimeTravel || snap.At != snap.Now {
		t.Fatalf("live snapshot header = %+v", snap)
	}
	if len(snap.Switches) == 0 || len(snap.Links) == 0 {
		t.Fatalf("snapshot empty: %d switches, %d links", len(snap.Switches), len(snap.Links))
	}
	if len(snap.Updates) != 1 || snap.Updates[0].Status != "converged" {
		t.Fatalf("overlay = %+v", snap.Updates)
	}
	for _, sw := range snap.Switches {
		for _, p := range sw.Pending {
			t.Errorf("converged snapshot still pending on %s: %+v", sw.Switch, p)
		}
	}

	// Time travel to before the update was planned: the overlay and the
	// migrated rules must vanish, the header must say so.
	var past state.StateSnapshot
	getJSON(t, base+"/state?at=1", &past)
	if !past.TimeTravel || past.At != 1 || past.Now != snap.Now {
		t.Fatalf("past snapshot header = %+v", past)
	}
	if len(past.Updates) != 0 {
		t.Fatalf("past snapshot lists a not-yet-planned update: %+v", past.Updates)
	}

	var drift state.DriftReport
	getJSON(t, base+"/drift", &drift)
	if drift.Tracked != 1 || len(drift.Updates) != 1 {
		t.Fatalf("drift = %+v", drift)
	}
	u := drift.Updates[0]
	if u.Status != "converged" || u.DriftAgeTicks != 0 || u.Method != "chronus" {
		t.Fatalf("drift update = %+v", u)
	}
	if drift.Counts["converged"] != 1 {
		t.Fatalf("drift counts = %v", drift.Counts)
	}
	for _, sw := range u.Switches {
		if sw.State != "applied" || sw.AppliedAt == 0 || sw.ObservedNext != sw.IntendedNext {
			t.Fatalf("switch evidence = %+v", sw)
		}
	}
}

// TestDaemonStateJournalByteIdentity: rebuilding the store offline from
// the daemon's journal (the `mutp -state-from` path) must reproduce the
// live GET /state and GET /drift bodies byte for byte.
func TestDaemonStateJournalByteIdentity(t *testing.T) {
	dir := t.TempDir()
	srv, err := newServer(serverOptions{Seed: 1, Virtual: true, Wall: false, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}
	liveState := getBody(t, ts.URL+"/state")
	liveDrift := getBody(t, ts.URL+"/drift")
	ts.Close()
	srv.Close() // settles the journal

	st, stats, err := state.FromJournal(dir, state.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events == 0 || stats.Torn != 0 {
		t.Fatalf("journal stats = %+v", stats)
	}
	replayState, err := state.Encode(st.StateBody(-1))
	if err != nil {
		t.Fatal(err)
	}
	replayDrift, err := state.Encode(st.DriftBody())
	if err != nil {
		t.Fatal(err)
	}
	if liveState != string(replayState) {
		t.Errorf("offline /state diverges from live:\n--- live ---\n%s\n--- replay ---\n%s", liveState, replayState)
	}
	if liveDrift != string(replayDrift) {
		t.Errorf("offline /drift diverges from live:\n--- live ---\n%s\n--- replay ---\n%s", liveDrift, replayDrift)
	}
}

// TestDaemonRestartStrandedDrift is the crash-recovery scenario end to
// end: a daemon executes a timed schedule with the applies parked far
// in the future, dies after only some of them fired, and the restarted
// daemon — reading the same journal — must classify the update as
// stranded with per-switch applied/missing evidence and go CRIT.
func TestDaemonRestartStrandedDrift(t *testing.T) {
	dir := t.TempDir()
	srv, err := newServer(serverOptions{
		Seed: 1, Virtual: true, Wall: false,
		JournalDir: dir, ExecHeadroom: 5000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}

	// The headroom parked every apply in the virtual future: the update
	// is converging with all switches pending.
	var drift state.DriftReport
	getJSON(t, ts.URL+"/drift", &drift)
	if len(drift.Updates) != 1 || drift.Updates[0].Status != "converging" {
		t.Fatalf("pre-advance drift = %+v", drift.Updates)
	}
	var minAt, maxAt int64
	for i, sw := range drift.Updates[0].Switches {
		if sw.State != "pending" {
			t.Fatalf("pre-advance switch %s = %q, want pending", sw.Switch, sw.State)
		}
		if i == 0 || sw.IntendedAt < minAt {
			minAt = sw.IntendedAt
		}
		if sw.IntendedAt > maxAt {
			maxAt = sw.IntendedAt
		}
	}
	if maxAt-minAt < 4 {
		t.Fatalf("schedule too tight to split: applies at %d..%d", minAt, maxAt)
	}

	// Advance to a midpoint so part of the schedule fires, then kill the
	// daemon. (Switch clocks carry bounded skew, so a tick strictly
	// between the first and last apply splits the schedule.)
	var status map[string]any
	getJSON(t, ts.URL+"/status", &status)
	now := int64(status["now"].(float64))
	mid := (minAt + maxAt) / 2
	resp, _ = postJSON(t, ts.URL+"/advance", fmt.Sprintf(`{"ticks": %d}`, mid-now))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance: %s", resp.Status)
	}
	getJSON(t, ts.URL+"/drift", &drift)
	mixed := map[string]int{}
	for _, sw := range drift.Updates[0].Switches {
		mixed[sw.State]++
	}
	if mixed["applied"] == 0 || mixed["pending"] == 0 {
		t.Fatalf("midpoint did not split the schedule: %v", mixed)
	}
	ts.Close()
	srv.Close()

	// The restart reads the dead run's journal: the half-executed update
	// is stranded — nothing pends across a daemon death.
	srv2, err := newServer(serverOptions{Seed: 1, Virtual: true, Wall: false, JournalDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.handler())
	t.Cleanup(func() {
		ts2.Close()
		srv2.Close()
	})

	// Decode into a fresh struct: json.Unmarshal merges into reused
	// slice elements, which would let pre-restart fields leak through.
	drift = state.DriftReport{}
	getJSON(t, ts2.URL+"/drift", &drift)
	if drift.Run != 2 {
		t.Fatalf("restart run = %d, want 2", drift.Run)
	}
	if drift.Counts["stranded"] != 1 || len(drift.Updates) != 1 {
		t.Fatalf("restart drift = %+v", drift)
	}
	u := drift.Updates[0]
	if u.Status != "stranded" || u.Run != 1 {
		t.Fatalf("stranded update = %+v", u)
	}
	evidence := map[string]int{}
	for _, sw := range u.Switches {
		evidence[sw.State]++
		if sw.State == "missing" && sw.SentAt != 0 {
			t.Errorf("dead-run sent evidence leaked into run 2: %+v", sw)
		}
	}
	if evidence["applied"] == 0 || evidence["missing"] == 0 || evidence["pending"] != 0 {
		t.Fatalf("stranded evidence = %v, want applied+missing, nothing pending", evidence)
	}

	// The health rules turn the stranding into a CRIT verdict.
	var verdict struct {
		Level   string   `json:"level"`
		Reasons []string `json:"reasons"`
		Drift   *struct {
			Stranded int `json:"stranded"`
		} `json:"drift"`
	}
	getJSON(t, ts2.URL+"/health", &verdict)
	if verdict.Level != "CRIT" {
		t.Fatalf("restart health = %+v", verdict)
	}
	if verdict.Drift == nil || verdict.Drift.Stranded != 1 {
		t.Fatalf("health drift stats = %+v", verdict.Drift)
	}
	found := false
	for _, r := range verdict.Reasons {
		if strings.Contains(r, "stranded") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no stranded reason in %v", verdict.Reasons)
	}

	// And the gauges mirror it.
	metrics := getBody(t, ts2.URL+"/metrics")
	for _, line := range []string{
		"chronus_state_tracked_updates 1",
		"chronus_state_stranded_updates 1",
	} {
		if !strings.Contains(metrics, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
}

// linksStateViews covers the /links growth: the live body's
// rate-vs-peak split, the ?at= snapshot view and the ?since= history
// view, plus the per-link timeline endpoint.
func linksStateViews(t *testing.T, base string) {
	// Live: every link reports both the instantaneous rate and the peak,
	// and peak never lags rate.
	var live []struct {
		From string `json:"from"`
		To   string `json:"to"`
		Rate int64  `json:"rate"`
		Peak int64  `json:"peak"`
	}
	getJSON(t, base+"/links", &live)
	if len(live) == 0 {
		t.Fatal("no links")
	}
	var peaked bool
	for _, l := range live {
		if l.Peak < l.Rate {
			t.Errorf("link %s>%s peak %d < rate %d", l.From, l.To, l.Peak, l.Rate)
		}
		if l.Peak > 0 {
			peaked = true
		}
	}
	if !peaked {
		t.Fatalf("no link ever carried traffic: %+v", live)
	}

	// ?at= is the snapshot view of the same links.
	var at struct {
		Run   int              `json:"run"`
		At    int64            `json:"at"`
		Links []state.LinkSnap `json:"links"`
	}
	getJSON(t, base+"/links?at=100", &at)
	if at.Run != 1 || at.At != 100 {
		t.Fatalf("at view header = %+v", at)
	}

	// ?since= is the history view: at least the migrated path's links
	// carry multiple points.
	var since struct {
		Since int64 `json:"since"`
		Links []struct {
			Link     string                `json:"link"`
			Capacity int64                 `json:"capacity"`
			Points   []state.TimelinePoint `json:"points"`
		} `json:"links"`
	}
	getJSON(t, base+"/links?since=0", &since)
	if len(since.Links) == 0 {
		t.Fatal("history view empty")
	}
	for _, l := range since.Links {
		if len(l.Points) == 0 || l.Capacity == 0 {
			t.Fatalf("history entry = %+v", l)
		}
	}

	// The timeline endpoint serves one link's series.
	var tl state.Timeline
	getJSON(t, base+"/links/"+strings.Split(since.Links[0].Link, ">")[0]+"/"+strings.Split(since.Links[0].Link, ">")[1]+"/timeline?since=0", &tl)
	if tl.Source != "ring" || len(tl.Points) == 0 {
		t.Fatalf("timeline = %+v", tl)
	}

	// An unknown link 404s.
	r, err := http.Get(base + "/links/R1/R7/timeline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown link timeline: %s, want 404", r.Status)
	}
}

// TestDaemonBadQueryParams is the input-hardening table: every paged or
// tick-parameterized GET must answer malformed parameters with a 400
// and a JSON error envelope, never a 200 over garbage or a panic.
func TestDaemonBadQueryParams(t *testing.T) {
	_, ts := newTestServerOpts(t, serverOptions{Seed: 1, Virtual: true, Wall: false})
	for _, path := range []string{
		"/state?at=bogus",
		"/state?at=-3",
		"/state?at=1e9",
		"/links?at=bogus",
		"/links?since=bogus",
		"/links?at=1&since=2",
		"/links/R1/R2/timeline?since=bogus",
		"/links/R1/R2/timeline?since=-1",
		"/trace?since=bogus",
		"/trace?limit=0",
		"/trace?limit=bogus",
		"/spans?since=bogus",
		"/spans?limit=-1",
	} {
		t.Run(path, func(t *testing.T) {
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %s, want 400", resp.Status)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q", ct)
			}
			if !strings.Contains(string(body), `"error"`) {
				t.Fatalf("no error envelope: %s", body)
			}
		})
	}
}
