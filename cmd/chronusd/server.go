package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	chronus "github.com/chronus-sdn/chronus"
	"github.com/chronus-sdn/chronus/internal/audit"
	"github.com/chronus-sdn/chronus/internal/ofp"
)

// server holds the daemon's state: the emulated network, its switch agents
// (reachable over TCP), the controller, and the flow being managed.
type server struct {
	in     *chronus.Instance
	tb     *chronus.Testbed
	ctl    *chronus.Controller
	clock  *chronus.ClockEnsemble
	flow   chronus.FlowSpec
	reg    *chronus.MetricsRegistry
	tracer *chronus.Tracer
	meter  *ofp.ConnMeter

	mu      sync.Mutex
	updated bool

	listeners []net.Listener
	conns     []*ofp.Conn
}

func newServer(seed int64) (*server, error) {
	in := chronus.EmulationTopo()
	tb := chronus.NewTestbed(in.G)
	reg := chronus.NewMetricsRegistry()
	// Pre-register every family so /metrics is complete from boot, before
	// the first update or validation touches an instrument.
	chronus.RegisterAllMetrics(reg)
	reg.Help("chronus_trace_dropped_events_total", "Trace events evicted from the tracer ring buffer.")
	tracer := chronus.NewTracer(chronus.TracerOptions{
		Wall:  func() int64 { return time.Now().UnixNano() },
		Drops: reg.Counter("chronus_trace_dropped_events_total"),
	})
	in.Obs = reg
	srv := &server{
		in:     in,
		tb:     tb,
		ctl:    chronus.NewController(tb, chronus.ControllerOptions{Seed: seed, Obs: reg, Trace: tracer}),
		clock:  chronus.NewClockEnsemble(chronus.DefaultClockParams(seed), in.G.Nodes()),
		flow:   chronus.FlowSpec{Name: "agg", Tag: 0, Path: in.Init, Rate: chronus.Rate(in.Demand)},
		reg:    reg,
		tracer: tracer,
		meter:  ofp.NewConnMeter(reg),
	}
	tb.Net.SetObs(reg, tracer)
	if err := bootAgents(srv); err != nil {
		srv.Close()
		return nil, err
	}
	if err := srv.ctl.Provision(srv.flow); err != nil {
		srv.Close()
		return nil, err
	}
	srv.tb.AdvanceBy(200)
	return srv, nil
}

func (s *server) agentCount() int { return len(s.conns) }

// Close shuts the TCP plumbing down.
func (s *server) Close() {
	for _, c := range s.conns {
		c.Close()
	}
	for _, ln := range s.listeners {
		ln.Close()
	}
}

func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /topology", s.handleTopology)
	mux.HandleFunc("GET /links", s.handleLinks)
	mux.HandleFunc("GET /switches/{name}/rules", s.handleRules)
	mux.HandleFunc("GET /bandwidth", s.handleBandwidth)
	mux.HandleFunc("POST /advance", s.handleAdvance)
	mux.HandleFunc("GET /packetins", s.handlePacketIns)
	mux.HandleFunc("POST /update", s.handleUpdate)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /trace", s.handleTrace)
	mux.HandleFunc("GET /audit", s.handleAudit)
	mux.HandleFunc("GET /schemes", s.handleSchemes)
	return mux
}

// handleSchemes lists the registered scheduler names plus the methods
// POST /update accepts (every scheme, and "tp" — two-phase commit is an
// execution strategy with no planning step, not a scheme).
func (s *server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	schemes := chronus.Schemes()
	writeJSON(w, http.StatusOK, map[string]any{
		"schemes":        schemes,
		"update_methods": append(schemes, "tp"),
	})
}

// handleAudit replays the full recorded trace through the consistency
// auditor and returns its report: reconstructed congestion intervals and
// forwarding loops with per-violation evidence, the cross-check against
// the emulator's own overload spans, and the critical path of the last
// timed update.
func (s *server) handleAudit(w http.ResponseWriter, r *http.Request) {
	a := audit.New()
	a.Feed(s.tracer.Events(0)...)
	writeJSON(w, http.StatusOK, a.Report())
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

// handleTrace streams the recorded trace events as JSON Lines; ?since=N
// skips events with sequence numbers <= N, so pollers can tail the ring
// incrementally. With ?limit=N the response is instead a JSON envelope
// holding at most N events, the cursor to pass as since on the next
// page, and the tracer's eviction count.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	var since uint64
	if q := r.URL.Query().Get("since"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
			return
		}
		since = v
	}
	if q := r.URL.Query().Get("limit"); q != "" {
		limit, err := strconv.Atoi(q)
		if err != nil || limit <= 0 {
			writeErr(w, http.StatusBadRequest, errors.New("bad limit: want a positive integer"))
			return
		}
		events, next := s.tracer.Page(since, limit)
		writeJSON(w, http.StatusOK, map[string]any{
			"events":  events,
			"next":    next,
			"dropped": s.tracer.Dropped(),
		})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Chronus-Trace-Dropped", strconv.FormatUint(s.tracer.Dropped(), 10))
	_ = s.tracer.WriteJSONL(w, since)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handlePacketIns(w http.ResponseWriter, r *http.Request) {
	type pin struct {
		Switch string `json:"switch"`
		Flow   string `json:"flow"`
		Tag    uint16 `json:"tag"`
		Reason string `json:"reason"`
	}
	out := []pin{}
	for _, p := range s.ctl.PacketIns() {
		reason := "no-match"
		if p.Reason == ofp.ReasonTTLExpired {
			reason = "ttl-expired"
		}
		out = append(out, pin{
			Switch: s.in.G.Name(chronus.NodeID(p.SwitchID)),
			Flow:   p.Flow,
			Tag:    p.Tag,
			Reason: reason,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	updated := s.updated
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"now":             s.tb.Now(),
		"switches":        s.in.G.NumNodes(),
		"links":           s.in.G.NumLinks(),
		"agents":          s.agentCount(),
		"updated":         updated,
		"congested_links": s.tb.Net.CongestedLinks(),
	})
}

func (s *server) handleTopology(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"graph":   s.in.G,
		"initial": s.in.Init.Format(s.in.G),
		"final":   s.in.Fin.Format(s.in.G),
		"demand":  s.in.Demand,
	})
}

func (s *server) handleLinks(w http.ResponseWriter, r *http.Request) {
	type linkInfo struct {
		From      string  `json:"from"`
		To        string  `json:"to"`
		Capacity  int64   `json:"capacity"`
		Rate      int64   `json:"rate"`
		Bytes     float64 `json:"bytes"`
		Overloads int     `json:"overloads"`
	}
	var out []linkInfo
	s.tb.Do(func() {
		for _, l := range s.tb.Net.Links() {
			out = append(out, linkInfo{
				From:      s.in.G.Name(l.From()),
				To:        s.in.G.Name(l.To()),
				Capacity:  int64(l.Capacity()),
				Rate:      int64(l.Rate()),
				Bytes:     l.Bytes(),
				Overloads: len(l.Overloads()),
			})
		}
	})
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleRules(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	id := s.in.G.Lookup(name)
	if id == chronus.Invalid {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no switch %q", name))
		return
	}
	var rules any
	s.tb.Do(func() {
		rules = s.tb.Net.Switch(id).DumpRules()
	})
	writeJSON(w, http.StatusOK, rules)
}

func (s *server) handleBandwidth(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from := s.in.G.Lookup(q.Get("from"))
	to := s.in.G.Lookup(q.Get("to"))
	if from == chronus.Invalid || to == chronus.Invalid {
		writeErr(w, http.StatusBadRequest, errors.New("unknown from/to switch"))
		return
	}
	interval, _ := strconv.Atoi(q.Get("interval"))
	if interval <= 0 {
		interval = 50
	}
	samples, _ := strconv.Atoi(q.Get("samples"))
	if samples <= 0 || samples > 1000 {
		samples = 10
	}
	out, err := s.ctl.SampleLink(from, to, chronus.SimTime(interval), samples)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Ticks int64 `json:"ticks"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Ticks <= 0 || req.Ticks > 1_000_000 {
		writeErr(w, http.StatusBadRequest, errors.New("body must be {\"ticks\": 1..1000000}"))
		return
	}
	s.tb.AdvanceBy(chronus.SimTime(req.Ticks))
	writeJSON(w, http.StatusOK, map[string]any{"now": s.tb.Now()})
}

func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Method string `json:"method"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.mu.Lock()
	if s.updated {
		s.mu.Unlock()
		writeErr(w, http.StatusConflict, errors.New("flow already migrated; restart the daemon"))
		return
	}
	s.updated = true
	s.mu.Unlock()

	if err := s.executeUpdate(strings.ToLower(req.Method)); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	// Let the transition complete, then report ground truth.
	s.tb.AdvanceBy(chronus.SimTime(2 * (s.in.Init.Delay(s.in.G) + s.in.Fin.Delay(s.in.G))))
	var drops float64
	s.tb.Do(func() {
		for _, id := range s.in.G.Nodes() {
			drops += s.tb.Net.Switch(id).Dropped()
		}
	})
	writeJSON(w, http.StatusOK, map[string]any{
		"method":          req.Method,
		"now":             s.tb.Now(),
		"congested_links": s.tb.Net.CongestedLinks(),
		"overload_ticks":  s.tb.Net.TotalOverloadTicks(),
		"drops":           drops,
	})
}

// executeUpdate plans the migration with the named registry scheme (the
// solve is recorded under the scheme-labelled metrics counter) and executes
// whatever shape it produced: timed schedules run time-triggered, round
// sequences run barrier-paced, and decision-only results have nothing to
// execute. "tp" is the one non-scheme method — two-phase commit plans
// nothing, so it goes straight to the execution engine.
func (s *server) executeUpdate(method string) error {
	if method == "" {
		method = "chronus"
	}
	if method == "tp" {
		return s.ctl.ExecuteTwoPhase(s.in, s.flow, 1)
	}
	res, err := chronus.SolveWith(method, s.in, chronus.SchemeOptions{Obs: s.reg, Trace: s.tracer})
	if errors.Is(err, chronus.ErrUnknownScheme) {
		return fmt.Errorf("unknown method %q (want tp or a scheme: %s)", method, strings.Join(chronus.Schemes(), ", "))
	}
	if err != nil {
		return err
	}
	switch {
	case res.Schedule != nil:
		start := chronus.Tick(s.tb.Now()) + 50 // headroom past the control latency
		sched := chronus.NewSchedule(start)
		for v, tv := range res.Schedule.Times {
			sched.Set(v, start+(tv-res.Schedule.Start))
		}
		return s.ctl.ExecuteTimed(s.in, sched, s.flow)
	case len(res.Rounds) > 0 && res.Feasible == nil:
		sched := chronus.NewSchedule(0)
		for i, round := range res.Rounds {
			for _, v := range round {
				sched.Set(v, chronus.Tick(i))
			}
		}
		return s.ctl.ExecuteBarrierPaced(s.in, sched, s.flow, 1)
	default:
		return fmt.Errorf("scheme %q decides feasibility but produces no executable schedule", method)
	}
}
