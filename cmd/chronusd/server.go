package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	chronus "github.com/chronus-sdn/chronus"
	"github.com/chronus-sdn/chronus/internal/admit"
	"github.com/chronus-sdn/chronus/internal/api"
	"github.com/chronus-sdn/chronus/internal/audit"
	"github.com/chronus-sdn/chronus/internal/buildinfo"
	"github.com/chronus-sdn/chronus/internal/clock"
	"github.com/chronus-sdn/chronus/internal/health"
	"github.com/chronus-sdn/chronus/internal/journal"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/ofp"
	"github.com/chronus-sdn/chronus/internal/state"
)

// serverOptions configures a daemon instance.
type serverOptions struct {
	// Seed drives the control-latency model and the clock ensemble.
	Seed int64
	// Virtual runs the switch agents in-process on seeded virtual
	// sessions instead of TCP sockets. Combined with Wall=false the
	// whole daemon — trace stream and span forest included — is
	// byte-deterministic for a fixed seed, which is what the golden
	// tests and -deterministic runs use.
	Virtual bool
	// Wall stamps trace events with wall-clock time (the default for a
	// live daemon; off in deterministic mode).
	Wall bool
	// Log receives structured request and update logs; nil discards.
	Log *slog.Logger
	// TraceCap bounds the tracer ring (0 = the tracer's default). Tests
	// use tiny rings to exercise paging under eviction.
	TraceCap int
	// JournalDir, when set, attaches a durable journal to the tracer:
	// every trace event is appended to size-rotated JSONL segments in
	// this directory, surviving ring eviction and daemon crashes.
	JournalDir string
	// JournalFsync is the journal durability policy (rotate, never,
	// always; see internal/journal).
	JournalFsync journal.Fsync
	// JournalSegmentBytes overrides the journal segment rotation size
	// (0 = the journal's default). Tests use tiny segments.
	JournalSegmentBytes int64
	// QueueCap bounds the admission queue (0 = the admit engine's
	// default of 256).
	QueueCap int
	// Window is the admission coalescing window: how many queued
	// updates one planning wave covers (0 = the default of 64).
	Window int
	// StateRing bounds the observed-state store's per-link timeline
	// ring (0 = the store's default). Tests use tiny rings to exercise
	// journal backfill.
	StateRing int
	// ExecHeadroom is how many ticks past "now" a timed schedule's
	// first activation is shifted to clear the control latency
	// (0 = the default of 50). Crash tests raise it so a kill lands
	// mid-schedule deterministically.
	ExecHeadroom int64
}

// server holds the daemon's state: the emulated network, its switch agents
// (reachable over TCP, or in-process in virtual mode), the controller, and
// the flow being managed.
type server struct {
	in      *chronus.Instance
	tb      *chronus.Testbed
	ctl     *chronus.Controller
	clock   *chronus.ClockEnsemble
	flow    chronus.FlowSpec
	reg     *chronus.MetricsRegistry
	tracer  *chronus.Tracer
	meter   *ofp.ConnMeter
	health  *health.Engine
	clocks  *clock.Estimator
	journal *journal.Writer
	admit   *admit.Engine
	state   *state.Store
	log     *slog.Logger

	// linkCaps maps directed link names ("A>B") to provisioned
	// capacity — the timeline endpoint's existence check.
	linkCaps map[string]int64
	// headroom is the tick offset timed schedules are shifted by.
	headroom int64

	virtual bool
	mu      sync.Mutex
	updated bool
	costs   map[uint64]*updateCost
	// arrivals records when an admitted execute-update's HTTP request
	// entered the handler (the cost meter's queue-wait origin); execs
	// holds the executor's ground-truth outcome for the synchronous
	// handler's response. Both are keyed by admission id.
	arrivals map[uint64]time.Time
	execs    map[uint64]execResult

	listeners []net.Listener
	conns     []*ofp.Conn
}

func newServer(o serverOptions) (*server, error) {
	if o.Log == nil {
		o.Log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	in := chronus.EmulationTopo()
	tb := chronus.NewTestbed(in.G)
	reg := chronus.NewMetricsRegistry()
	// Pre-register every family so /metrics is complete from boot, before
	// the first update or validation touches an instrument.
	chronus.RegisterAllMetrics(reg)
	buildinfo.Register(reg)
	obs.RegisterRuntimeMetrics(reg)
	reg.Help("chronus_trace_dropped_events_total", "Trace events evicted from the tracer ring buffer.")
	journal.RegisterMetrics(reg)
	var wall func() int64
	if o.Wall {
		wall = func() int64 { return time.Now().UnixNano() }
	}
	var jw *journal.Writer
	var bootEvents []obs.Event
	if o.JournalDir != "" {
		// Read whatever earlier daemon runs left in the journal BEFORE
		// attaching the new writer: the observed-state store prefeeds
		// these so half-executed schedules of a dead run surface as
		// stranded in GET /drift. A missing or empty directory is a
		// fresh start, not an error.
		if evs, _, err := journal.ReadAll(o.JournalDir, 0); err == nil {
			bootEvents = evs
		}
		var err error
		jw, err = journal.Open(journal.Options{
			Dir:          o.JournalDir,
			SegmentBytes: o.JournalSegmentBytes,
			Fsync:        o.JournalFsync,
			Obs:          reg,
		})
		if err != nil {
			return nil, fmt.Errorf("journal: %w", err)
		}
	}
	var sink obs.Sink
	if jw != nil {
		sink = jw
	}
	tracer := chronus.NewTracer(chronus.TracerOptions{
		Wall:  wall,
		Cap:   o.TraceCap,
		Drops: reg.Counter("chronus_trace_dropped_events_total"),
		Sink:  sink,
	})
	in.Obs = reg
	srv := &server{
		in:       in,
		tb:       tb,
		ctl:      chronus.NewController(tb, chronus.ControllerOptions{Seed: o.Seed, Obs: reg, Trace: tracer}),
		clock:    chronus.NewClockEnsemble(chronus.DefaultClockParams(o.Seed), in.G.Nodes()),
		flow:     chronus.FlowSpec{Name: "agg", Tag: 0, Path: in.Init, Rate: chronus.Rate(in.Demand)},
		reg:      reg,
		tracer:   tracer,
		meter:    ofp.NewConnMeter(reg),
		health:   health.New(reg),
		clocks:   clock.New(reg),
		journal:  jw,
		log:      o.Log,
		virtual:  o.Virtual,
		costs:    make(map[uint64]*updateCost),
		arrivals: make(map[uint64]time.Time),
		execs:    make(map[uint64]execResult),
	}
	if srv.headroom = o.ExecHeadroom; srv.headroom <= 0 {
		srv.headroom = 50
	}
	srv.state = state.New(state.Options{
		JournalDir: o.JournalDir,
		RingCap:    o.StateRing,
		Obs:        reg,
	})
	if len(bootEvents) > 0 {
		srv.state.Prefeed(bootEvents)
		// The live tracer starts its sequence numbers over; mark the
		// boundary explicitly so the first live event cannot be folded
		// into the dead run.
		srv.state.BeginRun()
	}
	srv.registerStageMetrics()
	tb.Net.SetObs(reg, tracer)
	srv.linkCaps = map[string]int64{}
	tb.Do(func() {
		for _, l := range tb.Net.Links() {
			srv.linkCaps[in.G.Name(l.From())+">"+in.G.Name(l.To())] = int64(l.Capacity())
		}
	})
	if o.Virtual {
		srv.ctl.AttachAll(srv.clock)
	} else if err := bootAgents(srv); err != nil {
		srv.Close()
		return nil, err
	}
	if err := srv.ctl.Provision(srv.flow); err != nil {
		srv.Close()
		return nil, err
	}
	srv.health.SetClock(srv.clocks)
	// Boot-time clock probes: two rounds of timed no-op fires seed the
	// per-switch estimators (offset, drift, jitter, barrier RTT) before
	// the first update, inside the same settling window as before.
	now := srv.tb.Now()
	for _, at := range []chronus.SimTime{now + 60, now + 120} {
		if err := srv.ctl.ProbeClocks("clockprobe", at, in.G.Nodes()...); err != nil {
			srv.Close()
			return nil, fmt.Errorf("clock probe: %w", err)
		}
	}
	srv.tb.AdvanceBy(200)
	// The probes have fired; drop their no-op rules so switch tables
	// show only real flows, and fold the probe samples into estimates.
	if err := srv.ctl.DeleteFlow("clockprobe", in.G.Nodes()...); err != nil {
		srv.Close()
		return nil, fmt.Errorf("clock probe cleanup: %w", err)
	}
	srv.clocks.Observe(srv.tracer.Events(srv.clocks.Cursor()))
	// The admission pipeline: every POST /update goes through this
	// engine, which debits the shared capacity ledger at plan time,
	// plans disjoint updates in parallel, and batches conflicting ones
	// through the joint validator. Single-proc planning in virtual mode
	// keeps the trace byte-deterministic per seed.
	procs := 0
	if o.Virtual && !o.Wall {
		procs = 1
	}
	srv.admit = admit.New(in.G, admit.Options{
		QueueCap: o.QueueCap,
		Window:   o.Window,
		Procs:    procs,
		Obs:      reg,
		Trace:    tracer,
		Now:      func() int64 { return int64(tb.Now()) },
		Execute:  srv.executeAdmitted,
	})
	srv.health.SetQueue(queueAdapter{srv.admit})
	srv.health.SetDrift(driftAdapter{srv})
	return srv, nil
}

func (s *server) agentCount() int {
	if s.virtual {
		return s.in.G.NumNodes()
	}
	return len(s.conns)
}

// Close shuts the TCP plumbing down and settles the journal (drain,
// sync, close the open segment).
func (s *server) Close() {
	for _, c := range s.conns {
		c.Close()
	}
	for _, ln := range s.listeners {
		ln.Close()
	}
	if s.journal != nil {
		if err := s.journal.Close(); err != nil {
			s.log.Error("journal close", "err", err)
		}
	}
}

// handler builds the mux from the api package's endpoint table — the
// same table docs_test.go holds the README to — and panics at boot
// when the table and the wired handlers disagree in either direction.
func (s *server) handler() http.Handler {
	handlers := map[string]http.HandlerFunc{
		"GET /status":                     s.handleStatus,
		"GET /topology":                   s.handleTopology,
		"GET /links":                      s.handleLinks,
		"GET /switches/{name}/rules":      s.handleRules,
		"GET /bandwidth":                  s.handleBandwidth,
		"GET /packetins":                  s.handlePacketIns,
		"GET /metrics":                    s.handleMetrics,
		"GET /trace":                      s.handleTrace,
		"GET /spans":                      s.handleSpans,
		"GET /health":                     s.handleHealth,
		"GET /clocks":                     s.handleClocks,
		"GET /audit":                      s.handleAudit,
		"GET /schemes":                    s.handleSchemes,
		"GET /dash":                       s.handleDash,
		"GET /watch":                      s.handleWatch,
		"GET /queue":                      s.handleQueue,
		"GET /updates/{id}":               s.handleUpdates,
		"GET /state":                      s.handleState,
		"GET /drift":                      s.handleDrift,
		"GET /links/{from}/{to}/timeline": s.handleLinkTimeline,
		"POST /advance":                   s.handleAdvance,
		"POST /update":                    s.handleUpdate,
	}
	mux := http.NewServeMux()
	for _, ep := range api.Endpoints {
		pat := ep.Method + " " + ep.Path
		h, ok := handlers[pat]
		if !ok {
			panic("chronusd: endpoint table lists " + pat + " but no handler is wired")
		}
		mux.HandleFunc(pat, h)
		delete(handlers, pat)
	}
	for pat := range handlers {
		panic("chronusd: handler " + pat + " is missing from the api endpoint table")
	}
	return s.logged(mux)
}

// logged wraps the mux with slog request logging.
func (s *server) logged(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		s.log.Info("http",
			"method", r.Method, "path", r.URL.Path,
			"status", rec.status, "dur", time.Since(start).Round(time.Microsecond))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// Flush (the /watch stream needs it through the logging wrapper).
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// handleSpans returns the causal span forest reconstructed from the
// trace ring. ?since= and ?limit= page through the underlying events
// exactly like /trace (limit bounds events read, not spans returned);
// the next cursor resumes where this page stopped, and "skipped"
// reports how many events between the cursor and this page the ring
// evicted before they could be served. In deterministic (virtual,
// no-wall) mode the response bytes are fixed per seed.
func (s *server) handleSpans(w http.ResponseWriter, r *http.Request) {
	since, limit, err := parsePaging(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ps := s.tracer.PageStats(since, limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"spans":   chronus.BuildSpanForest(ps.Events),
		"next":    ps.Next,
		"skipped": ps.Skipped,
		"dropped": ps.Dropped,
	})
}

// handleHealth folds any trace events recorded since the last look
// into the health engine (and the clock estimator its predictive
// rules read from) and returns the verdict.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.clocks.Observe(s.tracer.Events(s.clocks.Cursor()))
	s.health.Observe(s.tracer.Events(s.health.Cursor()))
	writeJSON(w, http.StatusOK, s.health.Verdict())
}

// handleClocks folds fresh trace events into the per-switch clock
// estimators and returns their current offset/drift/jitter estimates.
// In deterministic (virtual, no-wall) mode the response bytes are
// fixed per seed.
func (s *server) handleClocks(w http.ResponseWriter, r *http.Request) {
	s.clocks.Observe(s.tracer.Events(s.clocks.Cursor()))
	writeJSON(w, http.StatusOK, map[string]any{
		"now":    s.tb.Now(),
		"clocks": s.clocks.Estimates(),
	})
}

// parsePaging reads the shared ?since= / ?limit= query parameters.
func parsePaging(r *http.Request) (since uint64, limit int, err error) {
	if q := r.URL.Query().Get("since"); q != "" {
		since, err = strconv.ParseUint(q, 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("bad since: %w", err)
		}
	}
	if q := r.URL.Query().Get("limit"); q != "" {
		limit, err = strconv.Atoi(q)
		if err != nil || limit <= 0 {
			return 0, 0, errors.New("bad limit: want a positive integer")
		}
	}
	return since, limit, nil
}

// handleSchemes lists the registered scheduler names plus the methods
// POST /update accepts (every scheme, and "tp" — two-phase commit is an
// execution strategy with no planning step, not a scheme).
func (s *server) handleSchemes(w http.ResponseWriter, r *http.Request) {
	schemes := chronus.Schemes()
	writeJSON(w, http.StatusOK, map[string]any{
		"schemes":        schemes,
		"update_methods": append(schemes, "tp"),
	})
}

// handleAudit replays the full recorded trace through the consistency
// auditor and returns its report: reconstructed congestion intervals and
// forwarding loops with per-violation evidence, the cross-check against
// the emulator's own overload spans, and the critical path of the last
// timed update.
func (s *server) handleAudit(w http.ResponseWriter, r *http.Request) {
	a := audit.New()
	a.Feed(s.tracer.Events(0)...)
	writeJSON(w, http.StatusOK, a.Report())
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// Refresh the health and clock gauges so a scrape that never touches
	// /health or /clocks still sees current margins and estimates.
	s.clocks.Observe(s.tracer.Events(s.clocks.Cursor()))
	s.clocks.Estimates()
	s.health.Observe(s.tracer.Events(s.health.Cursor()))
	s.health.Verdict()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	_ = s.reg.WritePrometheus(w)
}

// handleTrace streams the recorded trace events as JSON Lines; ?since=N
// skips events with sequence numbers <= N, so pollers can tail the ring
// incrementally. With ?limit=N the response is instead a JSON envelope
// holding at most N events, the cursor to pass as since on the next
// page, the count of events between the cursor and this page that the
// ring evicted unserved ("skipped"), and the tracer's total eviction
// count — all captured atomically, so a client summing skipped across
// pages accounts for every sequence number it never received.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	since, limit, err := parsePaging(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if limit > 0 {
		ps := s.tracer.PageStats(since, limit)
		writeJSON(w, http.StatusOK, map[string]any{
			"events":  ps.Events,
			"next":    ps.Next,
			"skipped": ps.Skipped,
			"dropped": ps.Dropped,
		})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Chronus-Trace-Dropped", strconv.FormatUint(s.tracer.Dropped(), 10))
	_ = s.tracer.WriteJSONL(w, since)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	// Every JSON endpoint reports live state; a cached response is
	// always wrong.
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *server) handlePacketIns(w http.ResponseWriter, r *http.Request) {
	type pin struct {
		Switch string `json:"switch"`
		Flow   string `json:"flow"`
		Tag    uint16 `json:"tag"`
		Reason string `json:"reason"`
	}
	out := []pin{}
	for _, p := range s.ctl.PacketIns() {
		reason := "no-match"
		if p.Reason == ofp.ReasonTTLExpired {
			reason = "ttl-expired"
		}
		out = append(out, pin{
			Switch: s.in.G.Name(chronus.NodeID(p.SwitchID)),
			Flow:   p.Flow,
			Tag:    p.Tag,
			Reason: reason,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	updated := s.updated
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"now":             s.tb.Now(),
		"switches":        s.in.G.NumNodes(),
		"links":           s.in.G.NumLinks(),
		"agents":          s.agentCount(),
		"updated":         updated,
		"congested_links": s.tb.Net.CongestedLinks(),
	})
}

func (s *server) handleTopology(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"graph":   s.in.G,
		"initial": s.in.Init.Format(s.in.G),
		"final":   s.in.Fin.Format(s.in.G),
		"demand":  s.in.Demand,
	})
}

// handleLinks reports per-link load. The default live body documents
// the rate semantics explicitly: "rate" is the instantaneous total at
// the current tick, "peak" the highest total ever observed on the
// link. ?at=<tick> serves a time-travel snapshot and ?since=<tick> the
// per-link history, both folded from the observed-state store (the
// HTTP surface over emu.Link.Timeline()); the two are mutually
// exclusive.
func (s *server) handleLinks(w http.ResponseWriter, r *http.Request) {
	atQ, sinceQ := r.URL.Query().Get("at"), r.URL.Query().Get("since")
	if atQ != "" && sinceQ != "" {
		writeErr(w, http.StatusBadRequest, errBadQuery)
		return
	}
	if atQ != "" {
		at, err := parseTick(r, "at", -1)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.foldState()
		snap := s.state.StateBody(at)
		writeJSON(w, http.StatusOK, map[string]any{
			"run": snap.Run, "at": snap.At, "links": snap.Links,
		})
		return
	}
	if sinceQ != "" {
		since, err := parseTick(r, "since", 0)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		s.foldState()
		type linkHistory struct {
			Link     string                `json:"link"`
			Capacity int64                 `json:"capacity"`
			Points   []state.TimelinePoint `json:"points"`
		}
		out := []linkHistory{}
		for _, name := range sortedLinkNames(s.linkCaps) {
			tl, ok := s.state.LinkTimeline(name, since)
			if !ok || len(tl.Points) == 0 {
				continue
			}
			out = append(out, linkHistory{Link: name, Capacity: tl.Capacity, Points: tl.Points})
		}
		writeJSON(w, http.StatusOK, map[string]any{"since": since, "links": out})
		return
	}
	type linkInfo struct {
		From     string `json:"from"`
		To       string `json:"to"`
		Capacity int64  `json:"capacity"`
		// Rate is the instantaneous total at the current tick; Peak is
		// the highest total ever observed (they diverge as soon as load
		// subsides).
		Rate      int64   `json:"rate"`
		Peak      int64   `json:"peak"`
		Bytes     float64 `json:"bytes"`
		Overloads int     `json:"overloads"`
	}
	var out []linkInfo
	s.tb.Do(func() {
		for _, l := range s.tb.Net.Links() {
			out = append(out, linkInfo{
				From:      s.in.G.Name(l.From()),
				To:        s.in.G.Name(l.To()),
				Capacity:  int64(l.Capacity()),
				Rate:      int64(l.Rate()),
				Peak:      int64(l.Peak()),
				Bytes:     l.Bytes(),
				Overloads: len(l.Overloads()),
			})
		}
	})
	writeJSON(w, http.StatusOK, out)
}

// sortedLinkNames returns the topology's directed link names in
// ascending order (response bodies are golden-pinned).
func sortedLinkNames(caps map[string]int64) []string {
	names := make([]string, 0, len(caps))
	for name := range caps {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func (s *server) handleRules(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	id := s.in.G.Lookup(name)
	if id == chronus.Invalid {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no switch %q", name))
		return
	}
	var rules any
	s.tb.Do(func() {
		rules = s.tb.Net.Switch(id).DumpRules()
	})
	writeJSON(w, http.StatusOK, rules)
}

func (s *server) handleBandwidth(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from := s.in.G.Lookup(q.Get("from"))
	to := s.in.G.Lookup(q.Get("to"))
	if from == chronus.Invalid || to == chronus.Invalid {
		writeErr(w, http.StatusBadRequest, errors.New("unknown from/to switch"))
		return
	}
	interval, _ := strconv.Atoi(q.Get("interval"))
	if interval <= 0 {
		interval = 50
	}
	samples, _ := strconv.Atoi(q.Get("samples"))
	if samples <= 0 || samples > 1000 {
		samples = 10
	}
	out, err := s.ctl.SampleLink(from, to, chronus.SimTime(interval), samples)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleAdvance(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Ticks int64 `json:"ticks"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Ticks <= 0 || req.Ticks > 1_000_000 {
		writeErr(w, http.StatusBadRequest, errors.New("body must be {\"ticks\": 1..1000000}"))
		return
	}
	s.tb.AdvanceBy(chronus.SimTime(req.Ticks))
	writeJSON(w, http.StatusOK, map[string]any{"now": s.tb.Now()})
}

// handleUpdate enqueues the request on the admission engine. The
// response stays synchronous by default — submit, then wait for the
// terminal state, so existing clients keep their one-shot semantics —
// while {"async": true} returns 202 with the admission id immediately
// (the id is registered before Submit returns, so a GET /updates/{id}
// issued right away can never 404).
func (s *server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	arrived := time.Now()
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	areq, err := s.admitRequest(&req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if areq.Execute {
		// The emulated aggregate flow migrates once per daemon life; the
		// slot is claimed at enqueue so a concurrent second POST gets the
		// 409 before it can double-migrate.
		s.mu.Lock()
		if s.updated {
			s.mu.Unlock()
			writeErr(w, http.StatusConflict, errors.New("flow already migrated; restart the daemon"))
			return
		}
		s.updated = true
		s.mu.Unlock()
	}
	id, err := s.admit.Submit(areq)
	if err != nil {
		if areq.Execute {
			s.mu.Lock()
			s.updated = false
			s.mu.Unlock()
		}
		status := http.StatusBadRequest
		if errors.Is(err, admit.ErrQueueFull) {
			status = http.StatusTooManyRequests
		}
		writeErr(w, status, err)
		return
	}
	if areq.Execute {
		s.mu.Lock()
		s.arrivals[id] = arrived
		s.mu.Unlock()
	}
	if req.Async {
		w.Header().Set("Location", fmt.Sprintf("/updates/%d", id))
		writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "state": "queued"})
		// Async clients poll instead of waiting, so the handler pumps the
		// wave planner itself; planMu serializes concurrent drains.
		go s.admit.Drain()
		return
	}
	view, err := s.admit.Wait(r.Context(), id)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, err)
		return
	}
	switch view.State {
	case "failed":
		writeErr(w, http.StatusBadRequest, errors.New(view.Reason))
	case "refused":
		writeErr(w, http.StatusConflict, fmt.Errorf("refused: %s", view.Reason))
	default:
		if areq.Execute {
			s.mu.Lock()
			out := s.execs[id]
			delete(s.execs, id)
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, map[string]any{
				"id":              id,
				"state":           view.State,
				"method":          req.Method,
				"span":            view.Span,
				"now":             out.Now,
				"congested_links": out.Congested,
				"overload_ticks":  out.OverloadTicks,
				"drops":           out.Drops,
			})
			return
		}
		writeJSON(w, http.StatusOK, view)
	}
}

// executeUpdate wraps the whole update — solve, plan, execution — in
// one root span and logs the outcome; see executePlanned for the
// actual dispatch. The admission id and tenant identify the update in
// the state.intent record the drift detector verifies against. Returns
// the root span id (the key the update's cost report is filed under).
func (s *server) executeUpdate(id uint64, tenant, method string) (chronus.SpanID, error) {
	root := s.tracer.StartSpan(int64(s.tb.Now()), "update", 0, obs.A("method", method))
	s.ctl.SetSpan(root.SpanID())
	err := s.executePlanned(id, tenant, method, root.SpanID())
	s.ctl.SetSpan(0)
	outcome := "ok"
	if err != nil {
		outcome = "error"
	}
	root.End(int64(s.tb.Now()), obs.A("outcome", outcome))
	if err != nil {
		s.log.Error("update failed", "method", method, "span", uint64(root.SpanID()), "err", err)
	} else {
		s.log.Info("update executed", "method", method, "span", uint64(root.SpanID()), "vt", int64(s.tb.Now()))
	}
	return root.SpanID(), err
}

// executePlanned plans the migration with the named registry scheme (the
// solve is recorded under the scheme-labelled metrics counter, and as a
// solve span under root) and executes whatever shape it produced: timed
// schedules run time-triggered, round sequences run barrier-paced, and
// decision-only results have nothing to execute. "tp" is the one
// non-scheme method — two-phase commit plans nothing, so it goes
// straight to the execution engine. Each branch arms the health engine
// with the plan it is about to execute, and records the
// planner-intended end-state (a state.intent event) before the first
// FlowMod goes out so a crash mid-execution leaves provable intent in
// the journal.
func (s *server) executePlanned(id uint64, tenant, method string, root chronus.SpanID) error {
	if method == "tp" {
		s.health.SetPlan(health.Plan{Kind: "twophase", Valid: true})
		now := int64(s.tb.Now())
		newTag := s.flow.Tag + 1
		key := fmt.Sprintf("%s/%d", s.flow.Name, newTag)
		sws := make([]state.IntentSwitch, 0, len(s.in.Fin))
		for _, v := range s.in.Fin {
			next := "host"
			if nh := s.in.Fin.NextHop(v); nh != chronus.Invalid {
				next = s.in.G.Name(nh)
			}
			sws = append(sws, state.IntentSwitch{Switch: s.in.G.Name(v), Next: next, At: now})
		}
		s.emitIntent(id, tenant, method, key, 0, sws)
		return s.ctl.ExecuteTwoPhase(s.in, s.flow, newTag)
	}
	res, err := chronus.SolveWith(method, s.in, chronus.SchemeOptions{
		Obs: s.reg, Trace: s.tracer, VT: int64(s.tb.Now()), Span: root,
	})
	if errors.Is(err, chronus.ErrUnknownScheme) {
		return fmt.Errorf("unknown method %q (want tp or a scheme: %s)", method, strings.Join(chronus.Schemes(), ", "))
	}
	if err != nil {
		return err
	}
	switch {
	case res.Schedule != nil:
		// The slack promise is computed on the solver's own schedule
		// (shifting every activation by the same start offset changes
		// no relative timing, hence no slack).
		report := res.Report
		if report == nil {
			report = chronus.Validate(s.in, res.Schedule)
		}
		now := int64(s.tb.Now())
		// Headroom past the control latency (configurable so crash
		// tests can park the applies far in the virtual future).
		start := chronus.Tick(s.tb.Now()) + chronus.Tick(s.headroom)
		sched := chronus.NewSchedule(start)
		for v, tv := range res.Schedule.Times {
			sched.Set(v, start+(tv-res.Schedule.Start))
		}
		plan := health.Plan{Kind: "timed", Valid: report.OK(), StartTick: now}
		for _, sl := range chronus.ScheduleSlack(s.in, res.Schedule) {
			plan.Switches = append(plan.Switches, health.PlanSwitch{
				Switch:     s.in.G.Name(sl.V),
				SlackTicks: int64(sl.Slack),
				// The slack entry's Time is on the solver's own clock;
				// shift it the same way the executed schedule is shifted
				// so the forecast extrapolates to the real fire tick.
				ApplyTick: int64(start + (sl.Time - res.Schedule.Start)),
				Critical:  sl.Critical,
			})
		}
		s.health.SetPlan(plan)
		s.tracer.EmitSpan("plan", root, now, now,
			obs.A("kind", "timed"), obs.A("switches", len(sched.Times)),
			obs.A("start", int64(start)), obs.A("valid", report.OK()))
		s.emitIntent(id, tenant, method,
			fmt.Sprintf("%s/%d", s.flow.Name, s.flow.Tag),
			minPlanSlack(plan), s.intentForSchedule(sched))
		return s.ctl.ExecuteTimed(s.in, sched, s.flow)
	case len(res.Rounds) > 0 && res.Feasible == nil:
		s.health.SetPlan(health.Plan{Kind: "rounds", Valid: true})
		sched := chronus.NewSchedule(0)
		for i, round := range res.Rounds {
			for _, v := range round {
				sched.Set(v, chronus.Tick(i))
			}
		}
		now := int64(s.tb.Now())
		s.tracer.EmitSpan("plan", root, now, now,
			obs.A("kind", "rounds"), obs.A("switches", len(sched.Times)),
			obs.A("rounds", len(res.Rounds)))
		// Barrier-paced rounds carry no per-switch apply ticks; the
		// intent promises the end-state "as of plan time" and converges
		// as the rounds execute.
		sws := make([]state.IntentSwitch, 0, len(sched.Times))
		for v := range sched.Times {
			next := "host"
			if nh := s.in.Fin.NextHop(v); nh != chronus.Invalid {
				next = s.in.G.Name(nh)
			}
			sws = append(sws, state.IntentSwitch{Switch: s.in.G.Name(v), Next: next, At: now})
		}
		s.emitIntent(id, tenant, method,
			fmt.Sprintf("%s/%d", s.flow.Name, s.flow.Tag), 0, sws)
		return s.ctl.ExecuteBarrierPaced(s.in, sched, s.flow, 1)
	default:
		return fmt.Errorf("scheme %q decides feasibility but produces no executable schedule", method)
	}
}
