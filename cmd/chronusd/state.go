package main

// The observed-state surface: GET /state (time-travel snapshots), GET
// /drift (desired-vs-observed classification) and the per-link
// timeline endpoint, all served from the internal/state store. The
// store folds the same trace stream the journal records, pulled
// cursor-style on read (like the clock estimator and health engine) so
// the update hot path never pays for it.

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	chronus "github.com/chronus-sdn/chronus"
	"github.com/chronus-sdn/chronus/internal/health"
	"github.com/chronus-sdn/chronus/internal/obs"
	"github.com/chronus-sdn/chronus/internal/state"
)

// foldState pulls the trace events recorded since the last look into
// the observed-state store. Events the ring evicted before they could
// be folded are accounted as missed (the journal, when configured,
// still has them).
func (s *server) foldState() {
	ps := s.tracer.PageStats(s.state.Cursor(), 0)
	s.state.NoteSkipped(ps.Skipped)
	s.state.Observe(ps.Events)
}

// parseTick reads one non-negative tick query parameter; absent yields
// the def value.
func parseTick(r *http.Request, name string, def int64) (int64, error) {
	q := r.URL.Query().Get(name)
	if q == "" {
		return def, nil
	}
	v, err := strconv.ParseInt(q, 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad %s: want a non-negative tick", name)
	}
	return v, nil
}

// handleState serves the observed-state snapshot. ?at=<tick> time
// travels: the tables, pending FlowMods, link rates and update
// overlays are reconstructed as of that tick of the current run. In
// deterministic (virtual, no-wall) mode the response bytes are fixed
// per seed.
func (s *server) handleState(w http.ResponseWriter, r *http.Request) {
	at, err := parseTick(r, "at", -1)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	s.foldState()
	writeJSON(w, http.StatusOK, s.state.StateBody(at))
}

// handleDrift serves the desired-vs-observed drift report: every
// tracked update's planner intent diffed against the observed tables,
// classified converging / stranded / diverged / converged with
// per-switch evidence. Updates recorded by earlier daemon runs on the
// same journal directory are included — a half-executed schedule whose
// daemon died shows up stranded here after the restart.
func (s *server) handleDrift(w http.ResponseWriter, r *http.Request) {
	s.foldState()
	writeJSON(w, http.StatusOK, s.state.DriftBody())
}

// handleLinkTimeline serves one link's utilization timeseries from the
// state store's ring, backfilled from the journal when ?since= reaches
// further back than the ring retains.
func (s *server) handleLinkTimeline(w http.ResponseWriter, r *http.Request) {
	since, err := parseTick(r, "since", 0)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	name := r.PathValue("from") + ">" + r.PathValue("to")
	if _, ok := s.linkCaps[name]; !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no link %q", name))
		return
	}
	s.foldState()
	tl, _ := s.state.LinkTimeline(name, since)
	if tl.Capacity == 0 {
		// The link exists but has not carried traffic yet; report its
		// provisioned capacity rather than zero.
		tl.Capacity = s.linkCaps[name]
	}
	writeJSON(w, http.StatusOK, tl)
}

// driftAdapter feeds the state store's drift report to the health
// rules (the same attach-source pattern as queueAdapter).
type driftAdapter struct{ s *server }

func (d driftAdapter) DriftHealth() health.DriftStats {
	d.s.foldState()
	rep := d.s.state.DriftBody()
	out := health.DriftStats{Tracked: rep.Tracked}
	for _, u := range rep.Updates {
		switch u.Status {
		case "stranded":
			out.Stranded++
		case "diverged":
			out.Diverged++
		case "converging":
			out.Converging++
		default:
			continue
		}
		if u.DriftAgeTicks > out.WorstAgeTicks {
			out.WorstAgeTicks = u.DriftAgeTicks
		}
		out.Updates = append(out.Updates, health.DriftUpdate{
			Update:     fmt.Sprintf("%d/%d", u.Run, u.ID),
			Status:     u.Status,
			AgeTicks:   u.DriftAgeTicks,
			SlackTicks: u.SlackTicks,
		})
	}
	return out
}

// emitIntent records an execute-update's planner-intended end-state as
// a state.intent trace event at plan time — before the first FlowMod
// is sent, so a daemon killed mid-schedule still has the intent in its
// journal and the restarted daemon's drift report can prove what the
// dead run left unfinished.
func (s *server) emitIntent(id uint64, tenant, method, key string, slack int64, sws []state.IntentSwitch) {
	if id == 0 {
		return
	}
	s.tracer.Point(int64(s.tb.Now()), "state.intent",
		obs.A("id", id), obs.A("tenant", tenant), obs.A("flow", s.flow.Name),
		obs.A("key", key), obs.A("kind", "execute"), obs.A("method", method),
		obs.A("slack", slack), obs.A("switches", state.EncodeIntentSwitches(sws)))
}

// intentForSchedule renders a shifted schedule's per-switch promises
// the way the drift detector will verify them: final-path next hops at
// absolute apply ticks.
func (s *server) intentForSchedule(sched *chronus.Schedule) []state.IntentSwitch {
	sws := make([]state.IntentSwitch, 0, len(sched.Times))
	for v, tv := range sched.Times {
		next := "host"
		if nh := s.in.Fin.NextHop(v); nh != chronus.Invalid {
			next = s.in.G.Name(nh)
		}
		sws = append(sws, state.IntentSwitch{
			Switch: s.in.G.Name(v),
			Next:   next,
			At:     int64(tv),
		})
	}
	return sws
}

// minPlanSlack extracts the tightest per-switch slack of a plan — the
// tolerance the drift age is judged against.
func minPlanSlack(plan health.Plan) int64 {
	var min int64
	for i, sw := range plan.Switches {
		if i == 0 || sw.SlackTicks < min {
			min = sw.SlackTicks
		}
	}
	return min
}

// errBadQuery is the shared 400 for mutually exclusive query params.
var errBadQuery = errors.New("at and since are mutually exclusive")
