//go:build !unix

package main

// processCPUNs has no portable implementation off unix; cost reports
// carry cpu_ns = 0 there and every other meter still works.
func processCPUNs() int64 { return 0 }
