package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	chronus "github.com/chronus-sdn/chronus"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	return newTestServerOpts(t, serverOptions{Seed: 1, Wall: true})
}

func newTestServerOpts(t *testing.T, o serverOptions) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(o)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestDaemonEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	var status map[string]any
	getJSON(t, ts.URL+"/status", &status)
	if status["switches"].(float64) != 10 || status["agents"].(float64) != 10 {
		t.Fatalf("status = %v", status)
	}

	var topoResp map[string]any
	getJSON(t, ts.URL+"/topology", &topoResp)
	if !strings.HasPrefix(topoResp["initial"].(string), "R1->R2") {
		t.Fatalf("topology = %v", topoResp["initial"])
	}

	var rules []map[string]any
	getJSON(t, ts.URL+"/switches/R1/rules", &rules)
	if len(rules) != 1 {
		t.Fatalf("R1 rules = %v", rules)
	}

	resp, _ := postJSON(t, ts.URL+"/advance", `{"ticks": 100}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance: %s", resp.Status)
	}

	var samples []map[string]any
	getJSON(t, ts.URL+"/bandwidth?from=R1&to=R2&interval=50&samples=3", &samples)
	if len(samples) != 3 {
		t.Fatalf("samples = %v", samples)
	}

	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}
	if result["congested_links"].(float64) != 0 || result["drops"].(float64) != 0 {
		t.Fatalf("chronus update violated: %v", result)
	}

	// Second update is refused.
	resp, _ = postJSON(t, ts.URL+"/update", `{"method": "tp"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second update: %s", resp.Status)
	}

	// Unknown switch is a 404.
	r, err := http.Get(ts.URL + "/switches/nope/rules")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown switch: %s", r.Status)
	}
}

// expositionLine matches the Prometheus text format 0.0.4: comment
// lines (HELP, TYPE, and the registry's EXEMPLAR annotations), blank
// lines, or `name{labels} value`.
var expositionLine = regexp.MustCompile(
	`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|# EXEMPLAR [a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [0-9eE.+-]+|)$`)

func TestDaemonMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	// Drive one update so the scheduler, controller and emulator families
	// all carry non-zero values.
	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if !expositionLine.MatchString(line) {
			t.Fatalf("line %d not valid exposition text: %q", i+1, line)
		}
	}
	// The exposition must cover the controller, scheduler and emulator
	// families (plus the rest of the stack).
	for _, family := range []string{
		"chronus_controller_flowmods_sent_total",
		"chronus_controller_barrier_rtt_ticks_bucket",
		"chronus_scheduler_candidates_total",
		"chronus_scheduler_runs_total",
		"chronus_validator_runs_total",
		"chronus_switchd_flowmods_total",
		"chronus_emu_overloads_total",
		"chronus_ofp_messages_total",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("exposition missing family %q:\n%s", family, text)
		}
	}
	// A timed chronus update must have scheduled timed FlowMods and run
	// the scheduler exactly once.
	timed := regexp.MustCompile(`chronus_switchd_flowmods_total\{kind="timed"\} (\d+)`).FindStringSubmatch(text)
	if timed == nil || timed[1] == "0" {
		t.Fatalf("no timed FlowMods recorded:\n%s", text)
	}
	if !strings.Contains(text, "chronus_scheduler_runs_total 1") {
		t.Fatalf("scheduler run not recorded:\n%s", text)
	}
}

func TestDaemonTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}

	resp, err := http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("empty trace")
	}
	var last uint64
	for i, line := range lines {
		var ev struct {
			Seq  uint64 `json:"seq"`
			Name string `json:"name"`
			Wall int64  `json:"wall"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v", i+1, err)
		}
		if ev.Seq <= last {
			t.Fatalf("line %d seq %d not increasing (prev %d)", i+1, ev.Seq, last)
		}
		if ev.Wall == 0 {
			t.Fatalf("line %d missing wall-clock stamp (daemon tracer runs in wall mode): %s", i+1, line)
		}
		last = ev.Seq
	}

	// since=N resumes after the cursor.
	resp, err = http.Get(fmt.Sprintf("%s/trace?since=%d", ts.URL, last))
	if err != nil {
		t.Fatal(err)
	}
	tail, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(tail)) != "" {
		t.Fatalf("since=%d returned events: %q", last, tail)
	}
	resp, err = http.Get(ts.URL + "/trace?since=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since: %s", resp.Status)
	}
}

func TestDaemonORUpdateShowsTransients(t *testing.T) {
	_, ts := newTestServer(t)
	resp, result := postJSON(t, ts.URL+"/update", `{"method": "or"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("or update: %s (%v)", resp.Status, result)
	}
	if result["overload_ticks"].(float64) == 0 {
		t.Fatalf("or update showed no transient overload: %v", result)
	}
}

func TestDaemonRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/update", `{"method": "nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad method: %s", resp.Status)
	}
	resp, _ = postJSON(t, ts.URL+"/advance", `{"ticks": -5}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ticks: %s", resp.Status)
	}
}

func TestDaemonTracePaging(t *testing.T) {
	_, ts := newTestServer(t)
	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}

	type page struct {
		Events []struct {
			Seq  uint64 `json:"seq"`
			Name string `json:"name"`
		} `json:"events"`
		Next    uint64 `json:"next"`
		Dropped uint64 `json:"dropped"`
	}
	var p1 page
	getJSON(t, ts.URL+"/trace?limit=5", &p1)
	if len(p1.Events) != 5 || p1.Next != p1.Events[4].Seq {
		t.Fatalf("page 1 = %+v", p1)
	}
	if p1.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0 (ring is far from full)", p1.Dropped)
	}

	// The next page resumes exactly after the cursor.
	var p2 page
	getJSON(t, fmt.Sprintf("%s/trace?since=%d&limit=5", ts.URL, p1.Next), &p2)
	if len(p2.Events) != 5 || p2.Events[0].Seq <= p1.Next {
		t.Fatalf("page 2 = %+v", p2)
	}

	// Walking pages to exhaustion reaches a fixed point: empty page, cursor
	// unchanged.
	cursor := p2.Next
	for i := 0; i < 10000; i++ {
		var p page
		getJSON(t, fmt.Sprintf("%s/trace?since=%d&limit=500", ts.URL, cursor), &p)
		if len(p.Events) == 0 {
			if p.Next != cursor {
				t.Fatalf("empty page moved the cursor: %d -> %d", cursor, p.Next)
			}
			break
		}
		cursor = p.Next
	}

	resp, err := http.Get(ts.URL + "/trace?limit=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("limit=0: %s, want 400", resp.Status)
	}
}

// TestDaemonAuditEndpoint checks the runtime auditor over the daemon's
// real trace: a chronus timed update must audit clean, while an OR
// (barrier-paced) update must be flagged with congestion evidence that
// matches the emulator's own overload spans.
func TestDaemonAuditEndpoint(t *testing.T) {
	type report struct {
		Events     int `json:"events"`
		Congestion []struct {
			Link  string `json:"link"`
			Start int64  `json:"start"`
			End   int64  `json:"end"`
			Peak  int64  `json:"peak"`
		} `json:"congestion"`
		Loops          []map[string]any `json:"loops"`
		Blackholes     []map[string]any `json:"blackholes"`
		EmuOverloads   int              `json:"emu_overloads"`
		DetectorsAgree bool             `json:"detectors_agree"`
		Critical       struct {
			Gating   string `json:"gating"`
			Makespan int64  `json:"makespan"`
		} `json:"critical"`
	}

	t.Run("chronus-clean", func(t *testing.T) {
		_, ts := newTestServer(t)
		resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update: %s (%v)", resp.Status, result)
		}
		var rep report
		getJSON(t, ts.URL+"/audit", &rep)
		if rep.Events == 0 {
			t.Fatal("audit saw no events")
		}
		if len(rep.Congestion)+len(rep.Loops)+len(rep.Blackholes) != 0 {
			t.Fatalf("chronus update flagged: %+v", rep)
		}
		if !rep.DetectorsAgree {
			t.Fatalf("detectors disagree: %+v", rep)
		}
		if rep.Critical.Gating == "" {
			t.Fatalf("no critical path over a timed update: %+v", rep.Critical)
		}
	})

	t.Run("or-flagged", func(t *testing.T) {
		_, ts := newTestServer(t)
		resp, result := postJSON(t, ts.URL+"/update", `{"method": "or"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update: %s (%v)", resp.Status, result)
		}
		var rep report
		getJSON(t, ts.URL+"/audit", &rep)
		if len(rep.Congestion) == 0 {
			t.Fatalf("OR update not flagged for congestion: %+v", rep)
		}
		for _, c := range rep.Congestion {
			if c.Link == "" || c.End <= c.Start || c.Peak == 0 {
				t.Fatalf("congestion lacks link/tick evidence: %+v", c)
			}
		}
		if !rep.DetectorsAgree || rep.EmuOverloads != len(rep.Congestion) {
			t.Fatalf("reconstruction disagrees with emulator: agree=%v emu=%d rec=%d",
				rep.DetectorsAgree, rep.EmuOverloads, len(rep.Congestion))
		}
	})
}

func TestDaemonTraceDroppedCounterExposed(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "chronus_trace_dropped_events_total") {
		t.Fatal("exposition missing chronus_trace_dropped_events_total")
	}
	resp, err = http.Get(ts.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Chronus-Trace-Dropped"); got != "0" {
		t.Fatalf("X-Chronus-Trace-Dropped = %q, want 0", got)
	}
}

// TestDaemonSchemesEndpoint checks that /schemes reflects the registry and
// that an /update planned through it lands in the scheme-labelled solve
// counter on /metrics.
func TestDaemonSchemesEndpoint(t *testing.T) {
	_, ts := newTestServer(t)

	var got struct {
		Schemes       []string `json:"schemes"`
		UpdateMethods []string `json:"update_methods"`
	}
	getJSON(t, ts.URL+"/schemes", &got)
	want := chronus.Schemes()
	if len(got.Schemes) != len(want) {
		t.Fatalf("/schemes returned %v, want %v", got.Schemes, want)
	}
	for i, name := range want {
		if got.Schemes[i] != name {
			t.Fatalf("/schemes returned %v, want %v", got.Schemes, want)
		}
	}
	if len(got.UpdateMethods) != len(want)+1 || got.UpdateMethods[len(want)] != "tp" {
		t.Fatalf("update_methods = %v, want schemes plus tp", got.UpdateMethods)
	}

	resp, body := postJSON(t, ts.URL+"/update", `{"method": "chronus-fast"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s: %v", resp.Status, body)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	wantLine := `chronus_scheme_solve_total{scheme="chronus-fast",outcome="ok"} 1`
	if !strings.Contains(string(text), wantLine) {
		t.Fatalf("/metrics missing %q", wantLine)
	}
}

// TestDaemonUpdateRejectsNonExecutableScheme: on the emulation topology the
// tree check is outside its preconditions (non-uniform delays), and even
// where it runs it decides feasibility without planning anything the
// controller could push — either way /update must refuse with a 400.
func TestDaemonUpdateRejectsNonExecutableScheme(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/update", `{"method": "tree"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tree update: got %s, want 400 (%v)", resp.Status, body)
	}
	if msg, _ := body["error"].(string); msg == "" {
		t.Fatalf("tree update error = %v", body)
	}
}

// TestDaemonUpdateUnknownMethodListsSchemes checks the registry-derived
// error: the daemon names every accepted method rather than a stale
// hand-kept list.
func TestDaemonUpdateUnknownMethodListsSchemes(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/update", `{"method": "nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown update: got %s, want 400 (%v)", resp.Status, body)
	}
	msg, _ := body["error"].(string)
	for _, name := range chronus.Schemes() {
		if !strings.Contains(msg, name) {
			t.Fatalf("error %q does not list scheme %q", msg, name)
		}
	}
}

// TestDaemonTracePagingWhileDropping walks a full paginated /trace read
// against a deliberately tiny ring while an update floods it with
// events. Every sequence number must be either delivered on some page
// or covered by that page's "skipped" count — duplicated or silently
// lost seqs fail the accounting. This is the regression test for the
// cursor-vs-Dropped() drift: the envelope's numbers are now captured
// under the ring lock together with the page.
func TestDaemonTracePagingWhileDropping(t *testing.T) {
	_, ts := newTestServerOpts(t, serverOptions{Seed: 3, Virtual: true, TraceCap: 48})

	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/update", "application/json", strings.NewReader(`{"method": "chronus"}`))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("update: %s", resp.Status)
			}
		}
		done <- err
	}()

	type page struct {
		Events []struct {
			Seq uint64 `json:"seq"`
		} `json:"events"`
		Next    uint64 `json:"next"`
		Skipped uint64 `json:"skipped"`
		Dropped uint64 `json:"dropped"`
	}
	var cursor, seen, skipped, dropped uint64
	updating := true
	for {
		var p page
		getJSON(t, fmt.Sprintf("%s/trace?since=%d&limit=5", ts.URL, cursor), &p)
		dropped = p.Dropped
		if len(p.Events) == 0 {
			if p.Next != cursor {
				t.Fatalf("empty page moved the cursor: %d -> %d", cursor, p.Next)
			}
			if p.Skipped != 0 {
				t.Fatalf("empty page reported skipped=%d", p.Skipped)
			}
			if !updating {
				break
			}
			if err := <-done; err != nil {
				t.Fatal(err)
			}
			updating = false // one more pass to drain the tail
			continue
		}
		if want := cursor + p.Skipped + 1; p.Events[0].Seq != want {
			t.Fatalf("first seq %d != cursor %d + skipped %d + 1", p.Events[0].Seq, cursor, p.Skipped)
		}
		for i := 1; i < len(p.Events); i++ {
			if p.Events[i].Seq != p.Events[i-1].Seq+1 {
				t.Fatalf("page not contiguous: seq %d after %d", p.Events[i].Seq, p.Events[i-1].Seq)
			}
		}
		if p.Next != p.Events[len(p.Events)-1].Seq {
			t.Fatalf("next %d != last seq of page %d", p.Next, p.Events[len(p.Events)-1].Seq)
		}
		seen += uint64(len(p.Events))
		skipped += p.Skipped
		cursor = p.Next
	}
	if seen+skipped != cursor {
		t.Fatalf("seen %d + skipped %d != final cursor %d: seqs duplicated or silently lost", seen, skipped, cursor)
	}
	if skipped == 0 {
		t.Fatal("ring never evicted between pages; shrink TraceCap so the test exercises the drift path")
	}
	if skipped > dropped {
		t.Fatalf("reported skipped %d exceeds total drops %d", skipped, dropped)
	}

	// /spans pages through the same ring with the same accounting: each
	// page's cursor advance is exactly its skipped gap plus the events
	// it consumed (at most limit).
	type spansPage struct {
		Next    uint64 `json:"next"`
		Skipped uint64 `json:"skipped"`
	}
	var sp spansPage
	getJSON(t, ts.URL+"/spans?limit=5", &sp)
	if sp.Skipped == 0 {
		t.Fatal("/spans from cursor 0 reported no skipped events although the ring overflowed")
	}
	if consumed := sp.Next - sp.Skipped; consumed > 5 {
		t.Fatalf("/spans page consumed %d events > limit 5", consumed)
	}
	for prev := sp.Next; ; prev = sp.Next {
		getJSON(t, fmt.Sprintf("%s/spans?since=%d&limit=5", ts.URL, prev), &sp)
		if consumed := sp.Next - prev - sp.Skipped; consumed > 5 {
			t.Fatalf("/spans page consumed %d events > limit 5", consumed)
		}
		if sp.Next == prev {
			break
		}
	}
	if sp.Next != cursor {
		t.Fatalf("/spans exhausted at cursor %d, /trace at %d", sp.Next, cursor)
	}
}
