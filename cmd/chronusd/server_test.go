package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv, err := newServer(1)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&out)
	return resp, out
}

func TestDaemonEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	var status map[string]any
	getJSON(t, ts.URL+"/status", &status)
	if status["switches"].(float64) != 10 || status["agents"].(float64) != 10 {
		t.Fatalf("status = %v", status)
	}

	var topoResp map[string]any
	getJSON(t, ts.URL+"/topology", &topoResp)
	if !strings.HasPrefix(topoResp["initial"].(string), "R1->R2") {
		t.Fatalf("topology = %v", topoResp["initial"])
	}

	var rules []map[string]any
	getJSON(t, ts.URL+"/switches/R1/rules", &rules)
	if len(rules) != 1 {
		t.Fatalf("R1 rules = %v", rules)
	}

	resp, _ := postJSON(t, ts.URL+"/advance", `{"ticks": 100}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advance: %s", resp.Status)
	}

	var samples []map[string]any
	getJSON(t, ts.URL+"/bandwidth?from=R1&to=R2&interval=50&samples=3", &samples)
	if len(samples) != 3 {
		t.Fatalf("samples = %v", samples)
	}

	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}
	if result["congested_links"].(float64) != 0 || result["drops"].(float64) != 0 {
		t.Fatalf("chronus update violated: %v", result)
	}

	// Second update is refused.
	resp, _ = postJSON(t, ts.URL+"/update", `{"method": "tp"}`)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second update: %s", resp.Status)
	}

	// Unknown switch is a 404.
	r, err := http.Get(ts.URL + "/switches/nope/rules")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown switch: %s", r.Status)
	}
}

func TestDaemonORUpdateShowsTransients(t *testing.T) {
	_, ts := newTestServer(t)
	resp, result := postJSON(t, ts.URL+"/update", `{"method": "or"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("or update: %s (%v)", resp.Status, result)
	}
	if result["overload_ticks"].(float64) == 0 {
		t.Fatalf("or update showed no transient overload: %v", result)
	}
}

func TestDaemonRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := postJSON(t, ts.URL+"/update", `{"method": "nope"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad method: %s", resp.Status)
	}
	resp, _ = postJSON(t, ts.URL+"/advance", `{"ticks": -5}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad ticks: %s", resp.Status)
	}
}
