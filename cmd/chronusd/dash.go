package main

import (
	_ "embed"
	"net/http"
)

// dashHTML is the whole dashboard: one self-contained page, no build
// step, no external assets — it talks to /health and /spans with fetch
// and renders with vanilla DOM calls, so it works from a bare binary
// on an air-gapped testbed.
//
//go:embed dash.html
var dashHTML []byte

func (s *server) handleDash(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	_, _ = w.Write(dashHTML)
}
