// Command chronusd runs the Chronus controller as a daemon: it boots the
// emulated ten-switch data plane (the Mininet stand-in), starts one switch
// agent per switch on its own TCP socket speaking the ofp control protocol,
// connects the controller to each, provisions the aggregate flow, and
// exposes a REST API for inspecting and updating the network — the shape of
// the paper's Floodlight-based prototype.
//
//	chronusd -addr :8080
//
//	GET  /status                     controller and data-plane summary
//	GET  /topology                   switches, links, current routes
//	GET  /switches/{name}/rules      a switch's flow table
//	GET  /links                      per-link rates, counters, overloads
//	GET  /bandwidth?from=R2&to=R10&interval=50&samples=10
//	GET  /metrics                    Prometheus text exposition
//	GET  /trace?since=42             structured event trace as JSONL
//	GET  /trace?since=42&limit=100   one page of events as JSON, with a next cursor
//	GET  /spans?since=42&limit=100   causal span forest built from the trace
//	GET  /health                     live SLO verdict: slack margins vs observed skew
//	GET  /dash                       self-contained HTML dashboard over /health and /spans
//	GET  /audit                      consistency-audit report over the recorded trace
//	GET  /schemes                    registered scheduler names and accepted update methods
//	GET  /watch                      live SSE stream of trace events, resumable by cursor
//	GET  /queue                      admission queue, tenants, capacity-ledger utilization
//	GET  /updates/{id}               update lifecycle by admission id, or cost report by span id
//	GET  /state?at=1234              time-travel observed-state snapshot (omit at for now)
//	GET  /drift                      desired-vs-observed drift report per update
//	GET  /links/R1/R2/timeline?since=0   one link's utilization timeseries
//	POST /advance  {"ticks": 100}    advance virtual time
//	POST /update   {"method": "chronus"}   any registered scheme, or "tp"; "async": true for 202+id
//
// Update methods come from the scheme registry (internal/scheme): the
// daemon plans with the named scheme and executes whatever shape it
// returns — timed schedules time-triggered, round sequences barrier-paced.
//
// With -debug-addr a second listener additionally serves net/http/pprof
// and expvar on the standard /debug/ paths.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"github.com/chronus-sdn/chronus/internal/buildinfo"
	"github.com/chronus-sdn/chronus/internal/journal"
	"github.com/chronus-sdn/chronus/internal/ofp"
	"github.com/chronus-sdn/chronus/internal/switchd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "REST listen address")
	seed := flag.Int64("seed", 1, "seed for control latency and clock ensemble")
	debugAddr := flag.String("debug-addr", "", "listen address for pprof and expvar (empty disables)")
	virtual := flag.Bool("virtual", false, "run switch agents in-process over virtual sessions instead of TCP (deterministic)")
	journalDir := flag.String("journal-dir", "", "directory for the durable trace journal (empty disables)")
	journalFsync := flag.String("journal-fsync", "rotate", "journal fsync policy: rotate, never, always")
	queueCap := flag.Int("queue-cap", 0, "admission queue bound (0 = default 256)")
	window := flag.Int("window", 0, "admission coalescing window per planning wave (0 = default 64)")
	stateRing := flag.Int("state-ring", 0, "observed-state per-link timeline ring size (0 = default 1024)")
	execHeadroom := flag.Int64("exec-headroom", 0, "ticks of headroom before a timed schedule's first activation (0 = default 50)")
	logLevel := flag.String("log-level", "info", "slog level: debug, info, warn, error")
	version := flag.Bool("version", false, "print version and exit")
	flag.Parse()

	if *version {
		fmt.Println(buildinfo.String("chronusd"))
		return
	}

	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(os.Stderr, "chronusd:", err)
		os.Exit(1)
	}
	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl}))

	fsync, err := journal.ParseFsync(*journalFsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "chronusd:", err)
		os.Exit(1)
	}
	srv, err := newServer(serverOptions{
		Seed: *seed, Virtual: *virtual, Wall: true, Log: log,
		JournalDir: *journalDir, JournalFsync: fsync,
		QueueCap: *queueCap, Window: *window,
		StateRing: *stateRing, ExecHeadroom: *execHeadroom,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "chronusd:", err)
		os.Exit(1)
	}
	defer srv.Close()
	if *debugAddr != "" {
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "chronusd:", err)
			os.Exit(1)
		}
		fmt.Printf("chronusd: pprof and expvar on http://%s/debug/\n", ln.Addr())
		go func() { _ = http.Serve(ln, debugHandler()) }()
	}
	fmt.Printf("chronusd: %d switch agents, REST on http://%s\n", srv.agentCount(), *addr)
	if err := http.ListenAndServe(*addr, srv.handler()); err != nil {
		fmt.Fprintln(os.Stderr, "chronusd:", err)
		os.Exit(1)
	}
}

// debugHandler serves the stdlib profiling and variable endpoints on an
// explicit mux (the default mux is avoided so tests can run several
// servers side by side).
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// bootAgents starts one TCP listener + agent per switch and connects the
// controller to each, returning the listeners for cleanup.
func bootAgents(srv *server) error {
	in := srv.in
	for _, id := range in.G.Nodes() {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv.listeners = append(srv.listeners, ln)
		agent := switchd.New(srv.tb.Net, id, srv.clock)
		agent.SetObs(srv.reg, srv.tracer)
		go func() {
			for {
				conn, err := ln.Accept()
				if err != nil {
					return
				}
				oc := ofp.NewConn(conn)
				agent.SetNotify(func(m ofp.Msg) { _ = oc.Send(m) })
				go func() {
					defer oc.Close()
					_ = switchd.Serve(oc, agent, srv.tb.Do)
				}()
			}
		}()
		// A loopback connect normally completes instantly; the timeout
		// bounds the boot when a listener goroutine wedges.
		conn, err := ofp.DialTimeout(ln.Addr().String(), 5*time.Second)
		if err != nil {
			return err
		}
		conn.SetMeter(srv.meter)
		srv.conns = append(srv.conns, conn)
		name, err := srv.ctl.AttachTCP(id, conn)
		if err != nil {
			return err
		}
		if name != in.G.Name(id) {
			return fmt.Errorf("switch %d announced %q, want %q", id, name, in.G.Name(id))
		}
	}
	return nil
}
