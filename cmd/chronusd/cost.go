package main

import (
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	chronus "github.com/chronus-sdn/chronus"
	"github.com/chronus-sdn/chronus/internal/admit"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// Per-update cost attribution: every POST /update is metered — CPU
// time, heap allocations, queue wait, solver cache traffic — and its
// span tree is folded into per-stage latencies
// (solve→plan→send→barrier→apply). GET /updates/{span-id} serves the
// report; the same stage durations feed the
// chronus_update_stage_seconds{stage} histograms, whose exposition
// carries the update's span-id as an exemplar comment.

// tickSeconds converts virtual ticks to nominal wall seconds for the
// stage histograms. The emulation has no native wall mapping — ticks
// are the deterministic coordinate — so the daemon pins the paper's
// testbed scale of one millisecond per tick; the virtual-tick truth
// stays available in the cost report's *_ticks fields.
const tickSeconds = 1e-3

// updateStages maps span ops to the pipeline stage they account for,
// in pipeline order.
var updateStages = []struct {
	stage string
	ops   []string
}{
	{"solve", []string{"solve"}},
	{"plan", []string{"plan"}},
	{"send", []string{"ctl.send"}},
	{"barrier", []string{"ctl.barrier", "sw.barrier"}},
	{"apply", []string{"sw.apply"}},
}

// stageCost is one pipeline stage's share of an update: the stage span
// is [StartTick, EndTick] over all contributing spans, Ticks its
// length, Spans how many spans contributed.
type stageCost struct {
	Stage     string  `json:"stage"`
	StartTick int64   `json:"start_tick"`
	EndTick   int64   `json:"end_tick"`
	Ticks     int64   `json:"ticks"`
	Seconds   float64 `json:"seconds"`
	Spans     int     `json:"spans"`
}

// updateCost is the full per-update cost report.
type updateCost struct {
	Span    uint64 `json:"span"`
	Method  string `json:"method"`
	Outcome string `json:"outcome"`

	// Control-plane resource attribution, measured across the whole
	// POST /update handler (the daemon executes one update at a time,
	// so process-wide deltas are this update's).
	QueueWaitNs int64  `json:"queue_wait_ns"`
	WallNs      int64  `json:"wall_ns"`
	CPUNs       int64  `json:"cpu_ns"`
	AllocBytes  uint64 `json:"alloc_bytes"`
	Mallocs     uint64 `json:"mallocs"`

	// Solver cache traffic during the solve (hits/misses summed over
	// the tracer/precomp/plan caches).
	SolverCacheHits   int64 `json:"solver_cache_hits"`
	SolverCacheMisses int64 `json:"solver_cache_misses"`

	// Virtual-time window of the root update span and the per-stage
	// breakdown derived from its span tree.
	VTStart int64       `json:"vt_start"`
	VTEnd   int64       `json:"vt_end"`
	Stages  []stageCost `json:"stages"`
}

// costMeter snapshots the process counters an update's cost is the
// delta of.
type costMeter struct {
	arrived    time.Time
	started    time.Time
	cpuNs      int64
	allocBytes uint64
	mallocs    uint64
	hits       int64
	misses     int64
}

func (s *server) cacheCounters() (hits, misses int64) {
	for _, cache := range []string{"tracer", "precomp", "plan"} {
		hits += s.reg.Counter(`chronus_solver_cache_hits_total{cache="` + cache + `"}`).Value()
		misses += s.reg.Counter(`chronus_solver_cache_misses_total{cache="` + cache + `"}`).Value()
	}
	return hits, misses
}

// beginCost snapshots the meters at execution start; arrived is when
// the HTTP request entered the handler, so started-arrived is the
// queue wait (decode + serialization on the update lock).
func (s *server) beginCost(arrived time.Time) costMeter {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	hits, misses := s.cacheCounters()
	return costMeter{
		arrived:    arrived,
		started:    time.Now(),
		cpuNs:      processCPUNs(),
		allocBytes: ms.TotalAlloc,
		mallocs:    ms.Mallocs,
		hits:       hits,
		misses:     misses,
	}
}

// endCost computes the deltas, folds in the span-tree stage breakdown,
// stores the report, and feeds the stage histograms (with the span-id
// exemplar).
func (s *server) endCost(m costMeter, root chronus.SpanID, method, outcome string) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	hits, misses := s.cacheCounters()
	cost := &updateCost{
		Span:              uint64(root),
		Method:            method,
		Outcome:           outcome,
		QueueWaitNs:       m.started.Sub(m.arrived).Nanoseconds(),
		WallNs:            time.Since(m.started).Nanoseconds(),
		CPUNs:             processCPUNs() - m.cpuNs,
		AllocBytes:        ms.TotalAlloc - m.allocBytes,
		Mallocs:           ms.Mallocs - m.mallocs,
		SolverCacheHits:   hits - m.hits,
		SolverCacheMisses: misses - m.misses,
	}
	s.attachStages(cost, root)
	for _, st := range cost.Stages {
		series := fmt.Sprintf(`chronus_update_stage_seconds{stage=%q}`, st.Stage)
		s.stageHist(st.Stage).Observe(st.Seconds)
		s.reg.Exemplar(series, fmt.Sprintf("span_id=%d value=%g", uint64(root), st.Seconds))
	}
	s.mu.Lock()
	s.costs[uint64(root)] = cost
	s.mu.Unlock()
}

// stageHist returns the stage-labelled histogram, with bucket bounds
// spanning sub-tick stages to multi-second schedules.
func (s *server) stageHist(stage string) *obs.Histogram {
	return s.reg.Histogram(
		fmt.Sprintf(`chronus_update_stage_seconds{stage=%q}`, stage),
		[]float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10})
}

// registerStageMetrics pre-registers every stage series so the
// exposition is complete before the first update.
func (s *server) registerStageMetrics() {
	s.reg.Help("chronus_update_stage_seconds",
		"Per-update pipeline stage latency (solve, plan, send, barrier, apply) in nominal seconds (1 tick = 1 ms).")
	for _, st := range updateStages {
		s.stageHist(st.stage)
	}
}

// attachStages reconstructs the update's span tree from the trace ring
// (falling back to the journal when the ring has already evicted it)
// and folds each stage's spans into one interval.
func (s *server) attachStages(cost *updateCost, root chronus.SpanID) {
	forest := chronus.BuildSpanForest(s.traceEvents())
	var node *chronus.SpanNode
	for _, n := range forest {
		if n.ID == root {
			node = n
			break
		}
	}
	if node == nil {
		return
	}
	// The window opens with the root span and closes with the last span
	// anywhere in the tree: time-triggered activations outlive the
	// control-plane root span by design.
	cost.VTStart, cost.VTEnd = node.Start, node.End
	node.Walk(func(n *chronus.SpanNode) {
		if n.End > cost.VTEnd {
			cost.VTEnd = n.End
		}
	})
	opStage := make(map[string]int, 8)
	for i, st := range updateStages {
		for _, op := range st.ops {
			opStage[op] = i
		}
	}
	found := make([]*stageCost, len(updateStages))
	node.Walk(func(n *chronus.SpanNode) {
		i, ok := opStage[n.Op]
		if !ok {
			return
		}
		sc := found[i]
		if sc == nil {
			sc = &stageCost{Stage: updateStages[i].stage, StartTick: n.Start, EndTick: n.End}
			found[i] = sc
		}
		if n.Start < sc.StartTick {
			sc.StartTick = n.Start
		}
		if n.End > sc.EndTick {
			sc.EndTick = n.End
		}
		sc.Spans++
	})
	for _, sc := range found {
		if sc == nil {
			continue
		}
		sc.Ticks = sc.EndTick - sc.StartTick
		sc.Seconds = float64(sc.Ticks) * tickSeconds
		cost.Stages = append(cost.Stages, *sc)
	}
}

// traceEvents returns the ring's events, extended with any older
// events only the journal still holds (ring eviction must not cost an
// update its stage breakdown).
func (s *server) traceEvents() []chronus.TraceEvent {
	ring := s.tracer.Events(0)
	if s.journal == nil || s.tracer.Dropped() == 0 {
		return ring
	}
	var oldest uint64
	if len(ring) > 0 {
		oldest = ring[0].Seq
	}
	older := s.journalEvents(0, oldest)
	if len(older) == 0 {
		return ring
	}
	return append(older, ring...)
}

// handleUpdates serves GET /updates/{id}. Admission ids resolve to the
// update's lifecycle view (queued/planning/executing/done/refused/
// failed), with the cost report attached once the update has a root
// span; root span ids keep resolving to the bare cost report, so
// clients that saved a span id from POST /update keep working. 404
// only for ids known to neither space.
func (s *server) handleUpdates(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad update id: %w", err))
		return
	}
	if view, ok := s.admit.View(id); ok {
		resp := struct {
			admit.UpdateView
			Cost *updateCost `json:"cost,omitempty"`
		}{UpdateView: view}
		if view.Span != 0 {
			s.mu.Lock()
			resp.Cost = s.costs[view.Span]
			s.mu.Unlock()
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.mu.Lock()
	cost, ok := s.costs[id]
	ids := make([]uint64, 0, len(s.costs))
	for k := range s.costs {
		ids = append(ids, k)
	}
	s.mu.Unlock()
	if !ok {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		parts := make([]string, len(ids))
		for i, v := range ids {
			parts[i] = strconv.FormatUint(v, 10)
		}
		writeErr(w, http.StatusNotFound, fmt.Errorf("no update with span id %d (known: %s)", id, strings.Join(parts, ", ")))
		return
	}
	writeJSON(w, http.StatusOK, cost)
}
