package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	chronus "github.com/chronus-sdn/chronus"
	"github.com/chronus-sdn/chronus/internal/audit"
	"github.com/chronus-sdn/chronus/internal/journal"
)

// TestDaemonJournalRetainsEvictedEvents runs an update through a daemon
// whose trace ring is far too small to hold it: the ring must evict,
// the journal must not. Every sequence number the ring dropped is still
// on disk, in order, and the journal's own accounting is exposed on
// /metrics.
func TestDaemonJournalRetainsEvictedEvents(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServerOpts(t, serverOptions{
		Seed: 1, Virtual: true, Wall: false,
		TraceCap: 32, JournalDir: dir, JournalSegmentBytes: 2048,
	})
	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}
	dropped := srv.tracer.Dropped()
	if dropped == 0 {
		t.Fatal("TraceCap 32 did not force ring eviction; the test is vacuous")
	}
	if err := srv.journal.Flush(); err != nil {
		t.Fatal(err)
	}
	events, stats, err := journal.ReadAll(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	retained := srv.tracer.Events(0)
	if want := len(retained) + int(dropped); len(events) != want {
		t.Fatalf("journal holds %d events, want %d (%d retained + %d evicted)",
			len(events), want, len(retained), dropped)
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("journal event %d has seq %d, want %d (gap or reorder)", i, e.Seq, i+1)
		}
	}
	if stats.Segments < 2 {
		t.Errorf("2 KiB segments held %d events in %d segment(s), want rotation", len(events), stats.Segments)
	}

	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"chronus_journal_appended_total",
		"chronus_journal_dropped_total 0",
		"chronus_journal_bytes",
		"chronus_journal_segments",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// A /watch subscriber from zero on this same daemon must see every
	// sequence number from 1 — the evicted range backfilled from the
	// journal — with no gap frame.
	last := srv.tracer.PageStats(0, 0).Next
	c := dialWatch(t, ts.URL+"/watch", nil)
	want := uint64(1)
	for _, f := range c.collect(t, last) {
		if f.event == "gap" {
			t.Fatalf("gap frame despite journal backfill: %+v", f)
		}
		if f.id != want {
			t.Fatalf("frame ids not contiguous across the backfill: got %d, want %d", f.id, want)
		}
		want++
	}
}

// TestDaemonJournalReplayMatchesLiveEndpoints is the durability
// contract: a journal captured from a live run, replayed offline, must
// reproduce the /audit report and the /spans forest byte for byte (the
// daemon runs in deterministic virtual mode, so both are pure functions
// of the event stream).
func TestDaemonJournalReplayMatchesLiveEndpoints(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServerOpts(t, serverOptions{
		Seed: 1, Virtual: true, Wall: false,
		JournalDir: dir, JournalSegmentBytes: 4096,
	})
	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}
	liveAudit := getBody(t, ts.URL+"/audit")
	liveSpans := getBody(t, ts.URL+"/spans")

	if err := srv.journal.Flush(); err != nil {
		t.Fatal(err)
	}
	events, stats, err := journal.ReadAll(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Warnings) > 0 {
		t.Fatalf("clean journal produced warnings: %v", stats.Warnings)
	}
	if len(events) == 0 {
		t.Fatal("journal is empty")
	}

	a := audit.New()
	a.Feed(events...)
	rec := httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, a.Report())
	if got := rec.Body.String(); got != liveAudit {
		t.Errorf("offline audit of the journal != live /audit:\n--- journal ---\n%s\n--- live ---\n%s", got, liveAudit)
	}

	rec = httptest.NewRecorder()
	writeJSON(rec, http.StatusOK, map[string]any{
		"spans":   chronus.BuildSpanForest(events),
		"next":    events[len(events)-1].Seq,
		"skipped": 0,
		"dropped": 0,
	})
	if got := rec.Body.String(); got != liveSpans {
		t.Errorf("span forest from the journal != live /spans:\n--- journal ---\n%s\n--- live ---\n%s", got, liveSpans)
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s\n%s", url, r.Status, body)
	}
	return string(body)
}
