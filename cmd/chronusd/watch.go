package main

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"github.com/chronus-sdn/chronus/internal/journal"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// GET /watch is the live stream: trace events and finished spans pushed
// as Server-Sent Events the moment they are recorded, instead of being
// polled out of /trace pages. Each SSE frame carries the event's
// sequence number as its SSE id, so a client that reconnects with
// ?since=<last id> (or the standard Last-Event-ID header) resumes
// exactly where it stopped, with no duplicates.
//
// Resume survives ring eviction: when the cursor points below the
// ring's oldest retained event, the gap is backfilled from the durable
// journal (same Seq coordinates — journal offsets and ring cursors are
// one namespace). Only events that are in neither — journal-disabled
// daemons, or events the journal itself had to drop — surface as a
// "gap" frame carrying the skipped count, the same accounting /trace
// pages report.
const (
	watchBatch        = 256
	watchPollInterval = 25 * time.Millisecond
	watchPingInterval = 15 * time.Second
)

func (s *server) handleWatch(w http.ResponseWriter, r *http.Request) {
	since, err := watchCursor(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	fl := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	if err := fl.Flush(); err != nil {
		return
	}

	ctx := r.Context()
	cursor := since
	var buf []byte
	lastWrite := time.Now()
	ticker := time.NewTicker(watchPollInterval)
	defer ticker.Stop()
	for {
		ps := s.tracer.PageStats(cursor, watchBatch)
		if ps.Skipped > 0 {
			// The ring evicted events past the cursor before we served
			// them; recover what the journal still holds and report the
			// irrecoverable remainder.
			backfill := s.journalEvents(cursor, cursor+ps.Skipped+1)
			for _, e := range backfill {
				if err := writeEventFrame(w, &buf, e); err != nil {
					return
				}
			}
			if gap := ps.Skipped - uint64(len(backfill)); gap > 0 {
				if _, err := fmt.Fprintf(w, "event: gap\ndata: {\"after\": %d, \"skipped\": %d}\n\n", cursor, gap); err != nil {
					return
				}
			}
		}
		for _, e := range ps.Events {
			if err := writeEventFrame(w, &buf, e); err != nil {
				return
			}
		}
		cursor = ps.Next
		if len(ps.Events) > 0 || ps.Skipped > 0 {
			if err := fl.Flush(); err != nil {
				return
			}
			lastWrite = time.Now()
		} else if time.Since(lastWrite) >= watchPingInterval {
			// Heartbeat comment so a dead (slow, gone) client surfaces
			// as a write error instead of a goroutine parked forever.
			if _, err := fmt.Fprint(w, ": ping\n\n"); err != nil {
				return
			}
			if err := fl.Flush(); err != nil {
				return
			}
			lastWrite = time.Now()
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// watchCursor reads the resume cursor: ?since= wins, then the SSE
// standard Last-Event-ID header, default 0 (everything retained).
func watchCursor(r *http.Request) (uint64, error) {
	q := r.URL.Query().Get("since")
	if q == "" {
		q = r.Header.Get("Last-Event-ID")
	}
	if q == "" {
		return 0, nil
	}
	since, err := strconv.ParseUint(q, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad since: %w", err)
	}
	return since, nil
}

// writeEventFrame emits one trace event as an SSE frame: the sequence
// number as the frame id, "span" or "trace" as the event type, and the
// canonical codec line as the data.
func writeEventFrame(w http.ResponseWriter, buf *[]byte, e obs.Event) error {
	kind := "trace"
	if e.Name == obs.SpanEventName {
		kind = "span"
	}
	line, err := obs.EncodeJSONLine((*buf)[:0], e)
	*buf = line
	if err != nil {
		return err
	}
	// The codec line ends in '\n', which terminates the data field; one
	// more newline closes the frame.
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n", e.Seq, kind, line)
	return err
}

// journalEvents reads events with lo < Seq < hi back from the journal,
// flushing the writer first so the read sees everything the tracer has
// recorded. Returns nil when no journal is attached or the read fails
// (the watch stream then reports the range as a gap).
func (s *server) journalEvents(lo, hi uint64) []obs.Event {
	if s.journal == nil {
		return nil
	}
	if err := s.journal.Flush(); err != nil {
		return nil
	}
	var out []obs.Event
	_, err := journal.Replay(s.journal.Dir(), lo, func(e obs.Event) error {
		if e.Seq < hi {
			out = append(out, e)
		}
		return nil
	})
	if err != nil {
		return nil
	}
	return out
}
