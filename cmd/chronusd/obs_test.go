package main

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	chronus "github.com/chronus-sdn/chronus"
	"github.com/chronus-sdn/chronus/internal/api"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestDaemonResponseHeaders pins the caching contract for every GET
// endpoint: live JSON state must never be cached, the exposition and
// trace stream carry their own media types, and the dashboard is HTML.
func TestDaemonResponseHeaders(t *testing.T) {
	_, ts := newTestServer(t)
	tests := []struct {
		path        string
		contentType string
	}{
		{"/status", "application/json"},
		{"/topology", "application/json"},
		{"/links", "application/json"},
		{"/switches/R1/rules", "application/json"},
		{"/bandwidth?from=R1&to=R2&interval=50&samples=1", "application/json"},
		{"/packetins", "application/json"},
		{"/schemes", "application/json"},
		{"/spans", "application/json"},
		{"/health", "application/json"},
		{"/clocks", "application/json"},
		{"/audit", "application/json"},
		{"/state", "application/json"},
		{"/state?at=0", "application/json"},
		{"/drift", "application/json"},
		{"/links/R1/R2/timeline", "application/json"},
		{"/trace?limit=5", "application/json"},
		{"/trace", "application/x-ndjson"},
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/dash", "text/html; charset=utf-8"},
	}
	for _, tc := range tests {
		t.Run(tc.path, func(t *testing.T) {
			resp, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %s", resp.Status)
			}
			if got := resp.Header.Get("Content-Type"); got != tc.contentType {
				t.Errorf("Content-Type = %q, want %q", got, tc.contentType)
			}
			if got := resp.Header.Get("Cache-Control"); got != "no-store" {
				t.Errorf("Cache-Control = %q, want no-store", got)
			}
		})
	}
}

// TestDaemonEndpointTableComplete cross-checks the api table against the
// header test above: a GET endpoint added to the table without a row
// here would silently escape the caching contract.
func TestDaemonEndpointTableComplete(t *testing.T) {
	for _, ep := range api.Endpoints {
		if ep.Method != http.MethodGet {
			continue
		}
		if ep.Doc == "" {
			t.Errorf("endpoint %s %s has no doc string", ep.Method, ep.Path)
		}
	}
}

// TestDaemonSpansGolden pins the /spans response byte for byte in
// deterministic mode (virtual sessions, no wall clock): one chronus
// update on seed 1 must always reconstruct the same span forest.
func TestDaemonSpansGolden(t *testing.T) {
	_, ts := newTestServerOpts(t, serverOptions{Seed: 1, Virtual: true, Wall: false})
	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}
	r, err := http.Get(ts.URL + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "spans_chronus.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("/spans drifted from golden file (re-run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestDaemonClocksGolden pins the /clocks response byte for byte in
// deterministic mode: the boot-time probe rounds on seed 1 must always
// yield the same per-switch offset/drift/jitter estimates.
func TestDaemonClocksGolden(t *testing.T) {
	_, ts := newTestServerOpts(t, serverOptions{Seed: 1, Virtual: true, Wall: false})
	r, err := http.Get(ts.URL + "/clocks")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r.Body)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "clocks_boot.golden")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("/clocks drifted from golden file (re-run with -update to accept):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// Virtual sessions carry seeded 1..8-tick latencies, so the barrier
	// RTT estimates must be positive here.
	if !strings.Contains(string(got), `"rtt_ticks": `) || strings.Contains(string(got), `"rtt_ticks": 0`) {
		t.Errorf("virtual-mode RTT estimates missing or zero:\n%s", got)
	}
}

// TestDaemonClocksEndpoint checks the boot probes populate an estimate
// for every switch, with barrier-RTT samples from the probe barriers.
func TestDaemonClocksEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	var out struct {
		Clocks []struct {
			Switch     string `json:"switch"`
			Samples    int64  `json:"samples"`
			RTTSamples int64  `json:"rtt_samples"`
			RTTTicks   int64  `json:"rtt_ticks"`
		} `json:"clocks"`
	}
	getJSON(t, ts.URL+"/clocks", &out)
	if len(out.Clocks) != srv.in.G.NumNodes() {
		t.Fatalf("clock estimates for %d switches, want %d", len(out.Clocks), srv.in.G.NumNodes())
	}
	for _, c := range out.Clocks {
		if c.Samples < 2 {
			t.Errorf("switch %s has %d skew samples, want >= 2 boot probes", c.Switch, c.Samples)
		}
		// Over TCP the virtual clock stands still while messages are in
		// flight, so the barrier RTT in ticks is 0 here; virtual mode
		// (the golden test) sees the seeded 1..8-tick latencies.
		if c.RTTSamples < 1 {
			t.Errorf("switch %s has %d rtt samples, want >= 1", c.Switch, c.RTTSamples)
		}
	}
	// The probe flow must leave no rule residue.
	var rules []map[string]any
	getJSON(t, ts.URL+"/switches/R1/rules", &rules)
	for _, ru := range rules {
		if key, ok := ru["Key"].(map[string]any); ok && key["Flow"] == "clockprobe" {
			t.Fatalf("probe rule left behind: %v", rules)
		}
	}
}

// TestDaemonSpanTreeConnected drives a timed update through the real TCP
// agents and checks that the whole pipeline — solve, plan, execution,
// per-switch delivery and activation — reconstructs as ONE tree under the
// root update span, with the switch-side spans linked across the process
// boundary by OFP transaction id.
func TestDaemonSpanTreeConnected(t *testing.T) {
	_, ts := newTestServer(t)
	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}
	var got struct {
		Spans []*chronus.SpanNode `json:"spans"`
	}
	getJSON(t, ts.URL+"/spans", &got)

	var root *chronus.SpanNode
	for _, n := range got.Spans {
		if n.Op == "update" {
			if root != nil {
				t.Fatal("more than one update root span")
			}
			root = n
		}
	}
	if root == nil {
		t.Fatalf("no update root span in forest of %d roots", len(got.Spans))
	}
	ops := map[string]int{}
	switches := map[string]bool{}
	root.Walk(func(n *chronus.SpanNode) {
		ops[n.Op]++
		if sw := n.Attr("switch"); sw != "" && strings.HasPrefix(n.Op, "sw.") {
			switches[sw] = true
		}
		if n.End < n.Start {
			t.Errorf("span %d (%s) ends before it starts: [%d, %d]", n.ID, n.Op, n.Start, n.End)
		}
	})
	for _, op := range []string{"solve", "plan", "ctl.execute", "ctl.send", "sw.recv", "sw.apply"} {
		if ops[op] == 0 {
			t.Errorf("update tree missing %q spans (got %v)", op, ops)
		}
	}
	// A chronus update reprograms the five interior switches; each must
	// contribute switch-side spans to the same tree.
	if len(switches) < 5 {
		t.Errorf("switch-side spans from %d switches under the root, want >= 5: %v", len(switches), switches)
	}
	if ops["sw.apply"] < 5 {
		t.Errorf("sw.apply count = %d, want >= 5", ops["sw.apply"])
	}
}

// TestDaemonHealthEndpoint covers the verdict lifecycle: OK while idle, a
// clean chronus plan stays OK, and a best-effort oneshot plan whose own
// validation fails flips CRIT at plan time — before the auditor has any
// events to flag.
func TestDaemonHealthEndpoint(t *testing.T) {
	type verdict struct {
		Level    string   `json:"level"`
		Reasons  []string `json:"reasons"`
		Switches []struct {
			Switch      string `json:"switch"`
			MarginTicks int64  `json:"margin_ticks"`
		} `json:"switches"`
	}

	t.Run("idle-ok", func(t *testing.T) {
		_, ts := newTestServer(t)
		var v verdict
		getJSON(t, ts.URL+"/health", &v)
		if v.Level != "OK" {
			t.Fatalf("idle verdict = %+v", v)
		}
	})

	t.Run("chronus-ok", func(t *testing.T) {
		_, ts := newTestServer(t)
		resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update: %s (%v)", resp.Status, result)
		}
		var v verdict
		getJSON(t, ts.URL+"/health", &v)
		if v.Level == "CRIT" {
			t.Fatalf("clean chronus update went CRIT: %+v", v)
		}
		if len(v.Switches) == 0 {
			t.Fatalf("no per-switch margins after a timed update: %+v", v)
		}
	})

	t.Run("oneshot-crit", func(t *testing.T) {
		_, ts := newTestServer(t)
		resp, result := postJSON(t, ts.URL+"/update", `{"method": "oneshot"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("update: %s (%v)", resp.Status, result)
		}
		var v verdict
		getJSON(t, ts.URL+"/health", &v)
		if v.Level != "CRIT" {
			t.Fatalf("oneshot update verdict = %+v, want CRIT", v)
		}
		found := false
		for _, r := range v.Reasons {
			if strings.Contains(r, "plan") {
				found = true
			}
		}
		if !found {
			t.Fatalf("CRIT reasons do not mention the invalid plan: %v", v.Reasons)
		}
	})
}

// TestDaemonDashEndpoint checks the embedded dashboard ships and wires
// itself to the live endpoints.
func TestDaemonDashEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/dash")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	page := string(body)
	for _, want := range []string{"<!DOCTYPE html>", "fetch(\"/health\")", "fetch(\"/clocks\")", "fetch(\"/drift\")", "fetch(\"/spans\")", "chronusd"} {
		if !strings.Contains(page, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
}
