package main

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/chronus-sdn/chronus/internal/obs"
)

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	id    uint64
	event string
	data  string
}

// watchClient tails GET /watch and hands parsed frames to the caller.
type watchClient struct {
	cancel context.CancelFunc
	resp   *http.Response
	rd     *bufio.Reader
}

func dialWatch(t *testing.T, url string, header http.Header) *watchClient {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("watch: %s", resp.Status)
	}
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Errorf("watch Content-Type = %q", got)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-store" {
		t.Errorf("watch Cache-Control = %q", got)
	}
	c := &watchClient{cancel: cancel, resp: resp, rd: bufio.NewReader(resp.Body)}
	t.Cleanup(c.close)
	return c
}

func (c *watchClient) close() {
	c.cancel()
	c.resp.Body.Close()
}

// next reads one frame (skipping ping comments); the test fails if the
// stream ends or stalls past the deadline.
func (c *watchClient) next(t *testing.T) sseFrame {
	t.Helper()
	var f sseFrame
	deadline := time.AfterFunc(30*time.Second, c.cancel)
	defer deadline.Stop()
	for {
		line, err := c.rd.ReadString('\n')
		if err != nil {
			t.Fatalf("watch stream ended mid-frame: %v", err)
		}
		line = strings.TrimSuffix(line, "\n")
		switch {
		case strings.HasPrefix(line, ":"): // comment (ping)
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(line[4:], 10, 64)
			if err != nil {
				t.Fatalf("bad frame id %q", line)
			}
			f.id = id
		case strings.HasPrefix(line, "event: "):
			f.event = line[7:]
		case strings.HasPrefix(line, "data: "):
			f.data = line[6:]
		case line == "":
			if f.event != "" || f.data != "" {
				return f
			}
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
}

// collect reads frames until the stream has delivered an event with
// sequence number upto.
func (c *watchClient) collect(t *testing.T, upto uint64) []sseFrame {
	t.Helper()
	var out []sseFrame
	for {
		f := c.next(t)
		out = append(out, f)
		if f.id >= upto {
			return out
		}
	}
}

// TestDaemonWatchStream covers the live stream against one update on
// one daemon: a subscriber connected before the update sees every event
// it emits, in order, with no gaps, while the tracer is written
// concurrently; reconnecting with a cursor resumes without duplicates.
func TestDaemonWatchStream(t *testing.T) {
	srv, ts := newTestServerOpts(t, serverOptions{Seed: 1, Virtual: true, Wall: false})
	c := dialWatch(t, ts.URL+"/watch", nil)

	done := make(chan map[string]any, 1)
	go func() {
		_, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
		done <- result
	}()
	result := <-done
	if result["span"] == nil {
		t.Fatalf("update response carries no span id: %v", result)
	}
	last := srv.tracer.PageStats(0, 0).Next

	t.Run("live-stream", func(t *testing.T) {
		frames := c.collect(t, last)
		want := uint64(1)
		spans := 0
		for _, f := range frames {
			if f.event == "gap" {
				t.Fatalf("gap frame on an unevicted stream: %+v", f)
			}
			if f.id != want {
				t.Fatalf("frame ids not contiguous: got %d, want %d", f.id, want)
			}
			want++
			e, err := obs.DecodeJSONLine([]byte(f.data))
			if err != nil {
				t.Fatalf("frame %d data does not decode: %v", f.id, err)
			}
			if e.Seq != f.id {
				t.Fatalf("frame id %d carries event seq %d", f.id, e.Seq)
			}
			wantKind := "trace"
			if e.Name == obs.SpanEventName {
				wantKind = "span"
				spans++
			}
			if f.event != wantKind {
				t.Fatalf("frame %d event type %q, want %q", f.id, f.event, wantKind)
			}
		}
		if spans == 0 {
			t.Fatal("stream delivered no finished spans")
		}
	})

	t.Run("resume-last-event-id", func(t *testing.T) {
		mid := last / 2
		c := dialWatch(t, ts.URL+"/watch", http.Header{"Last-Event-Id": {strconv.FormatUint(mid, 10)}})
		frames := c.collect(t, last)
		for i, f := range frames {
			if want := mid + 1 + uint64(i); f.id != want {
				t.Fatalf("frame %d id = %d, want %d (duplicate or gap on resume)", i, f.id, want)
			}
		}
	})

	t.Run("resume-since-param", func(t *testing.T) {
		c := dialWatch(t, fmt.Sprintf("%s/watch?since=%d", ts.URL, last-1), nil)
		if f := c.next(t); f.id != last {
			t.Fatalf("since=%d delivered id %d first, want %d", last-1, f.id, last)
		}
	})

	t.Run("bad-cursor", func(t *testing.T) {
		r, err := http.Get(ts.URL + "/watch?since=banana")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad since: %s", r.Status)
		}
	})
}

// TestDaemonWatchGapWithoutJournal pins the honest-loss contract: when
// the ring has evicted events and no journal exists to backfill them, a
// subscriber from zero gets one gap frame accounting for exactly the
// missing range, then the retained events.
func TestDaemonWatchGapWithoutJournal(t *testing.T) {
	srv, ts := newTestServerOpts(t, serverOptions{
		Seed: 1, Virtual: true, Wall: false, TraceCap: 32,
	})
	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}
	ps := srv.tracer.PageStats(0, 0)
	if ps.Skipped == 0 {
		t.Fatal("TraceCap 32 did not force eviction; the test is vacuous")
	}

	c := dialWatch(t, ts.URL+"/watch", nil)
	f := c.next(t)
	if f.event != "gap" {
		t.Fatalf("first frame = %+v, want a gap frame", f)
	}
	if want := fmt.Sprintf(`{"after": 0, "skipped": %d}`, ps.Skipped); f.data != want {
		t.Fatalf("gap data = %q, want %q", f.data, want)
	}
	if f = c.next(t); f.id != ps.Skipped+1 {
		t.Fatalf("first event after gap has id %d, want %d", f.id, ps.Skipped+1)
	}
}

// TestDaemonWatchClientDisconnect drops the client mid-stream and
// checks the handler notices and returns (the httptest server Close in
// the test cleanup hangs the test if the handler goroutine leaks). Boot
// provisioning has already emitted events, so no update is needed.
func TestDaemonWatchClientDisconnect(t *testing.T) {
	_, ts := newTestServerOpts(t, serverOptions{Seed: 1, Virtual: true, Wall: false})
	c := dialWatch(t, ts.URL+"/watch", nil)
	c.next(t)
	c.close()
}
