package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

// TestDaemonUpdateCostReport drives one update and checks its cost
// attribution end to end: the span id returned by POST /update resolves
// on GET /updates/{id}, the resource meters moved, the span tree folded
// into per-stage latencies in pipeline order inside the update's
// virtual-time window, the stage histograms ship on /metrics with the
// span id attached as an exemplar, and the error surface behaves. One
// update feeds every subtest — updates are the expensive operation
// here, especially under -race.
func TestDaemonUpdateCostReport(t *testing.T) {
	_, ts := newTestServerOpts(t, serverOptions{Seed: 1, Virtual: true, Wall: false})
	resp, result := postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: %s (%v)", resp.Status, result)
	}
	span, ok := result["span"].(float64)
	if !ok || span == 0 {
		t.Fatalf("update response carries no span id: %v", result)
	}

	var cost struct {
		Span              uint64 `json:"span"`
		Method            string `json:"method"`
		Outcome           string `json:"outcome"`
		QueueWaitNs       int64  `json:"queue_wait_ns"`
		WallNs            int64  `json:"wall_ns"`
		CPUNs             int64  `json:"cpu_ns"`
		AllocBytes        uint64 `json:"alloc_bytes"`
		Mallocs           uint64 `json:"mallocs"`
		SolverCacheHits   int64  `json:"solver_cache_hits"`
		SolverCacheMisses int64  `json:"solver_cache_misses"`
		VTStart           int64  `json:"vt_start"`
		VTEnd             int64  `json:"vt_end"`
		Stages            []struct {
			Stage     string  `json:"stage"`
			StartTick int64   `json:"start_tick"`
			EndTick   int64   `json:"end_tick"`
			Ticks     int64   `json:"ticks"`
			Seconds   float64 `json:"seconds"`
			Spans     int     `json:"spans"`
		} `json:"stages"`
	}

	t.Run("report", func(t *testing.T) {
		r, err := http.Get(fmt.Sprintf("%s/updates/%d", ts.URL, uint64(span)))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("status = %s", r.Status)
		}
		if got := r.Header.Get("Content-Type"); got != "application/json" {
			t.Errorf("Content-Type = %q", got)
		}
		if got := r.Header.Get("Cache-Control"); got != "no-store" {
			t.Errorf("Cache-Control = %q", got)
		}
		if err := json.NewDecoder(r.Body).Decode(&cost); err != nil {
			t.Fatal(err)
		}

		if cost.Span != uint64(span) || cost.Method != "chronus" || cost.Outcome != "ok" {
			t.Fatalf("cost identity = %d/%s/%s, want %d/chronus/ok", cost.Span, cost.Method, cost.Outcome, uint64(span))
		}
		if cost.WallNs <= 0 || cost.QueueWaitNs < 0 {
			t.Errorf("wall_ns = %d, queue_wait_ns = %d", cost.WallNs, cost.QueueWaitNs)
		}
		if cost.Mallocs == 0 || cost.AllocBytes == 0 {
			t.Errorf("an update that allocated nothing is implausible: %+v", cost)
		}
		if cost.CPUNs < 0 {
			t.Errorf("cpu_ns = %d", cost.CPUNs)
		}
		if cost.SolverCacheHits+cost.SolverCacheMisses == 0 {
			t.Errorf("solve touched no solver cache (hits %d, misses %d)", cost.SolverCacheHits, cost.SolverCacheMisses)
		}
		if cost.VTEnd < cost.VTStart {
			t.Errorf("virtual window [%d, %d] inverted", cost.VTStart, cost.VTEnd)
		}
	})

	t.Run("stages", func(t *testing.T) {
		if len(cost.Stages) == 0 {
			t.Fatal("no stage breakdown")
		}
		order := map[string]int{"solve": 0, "plan": 1, "send": 2, "barrier": 3, "apply": 4}
		seen := map[string]bool{}
		prev := -1
		for _, st := range cost.Stages {
			rank, ok := order[st.Stage]
			if !ok {
				t.Fatalf("unknown stage %q", st.Stage)
			}
			if rank <= prev {
				t.Fatalf("stages out of pipeline order: %+v", cost.Stages)
			}
			prev = rank
			seen[st.Stage] = true
			if st.Spans == 0 || st.EndTick < st.StartTick {
				t.Errorf("stage %s: %+v", st.Stage, st)
			}
			if st.Ticks != st.EndTick-st.StartTick {
				t.Errorf("stage %s ticks = %d, want %d", st.Stage, st.Ticks, st.EndTick-st.StartTick)
			}
			if want := float64(st.Ticks) * tickSeconds; st.Seconds != want {
				t.Errorf("stage %s seconds = %g, want %g", st.Stage, st.Seconds, want)
			}
			if st.StartTick < cost.VTStart || st.EndTick > cost.VTEnd {
				t.Errorf("stage %s [%d, %d] outside the update window [%d, %d]",
					st.Stage, st.StartTick, st.EndTick, cost.VTStart, cost.VTEnd)
			}
		}
		for _, stage := range []string{"solve", "send", "apply"} {
			if !seen[stage] {
				t.Errorf("stage breakdown missing %q: %+v", stage, cost.Stages)
			}
		}
	})

	t.Run("exposition", func(t *testing.T) {
		text := getBody(t, ts.URL+"/metrics")
		for _, stage := range []string{"solve", "plan", "send", "barrier", "apply"} {
			if !strings.Contains(text, fmt.Sprintf(`chronus_update_stage_seconds_bucket{stage=%q,`, stage)) {
				t.Errorf("no %s stage histogram in the exposition", stage)
			}
		}
		if !strings.Contains(text, fmt.Sprintf(`# EXEMPLAR chronus_update_stage_seconds{stage="solve"} span_id=%d `, uint64(span))) {
			t.Errorf("no solve-stage exemplar carrying span id %d", uint64(span))
		}
	})

	t.Run("bad-id", func(t *testing.T) {
		r, err := http.Get(ts.URL + "/updates/notanumber")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad id: %s", r.Status)
		}
	})

	t.Run("unknown-id", func(t *testing.T) {
		r, err := http.Get(ts.URL + "/updates/999999999")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown id: %s", r.Status)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(r.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		// The 404 lists the ids that DO have reports, so a probe after a
		// daemon restart is self-explaining.
		if !strings.Contains(e.Error, fmt.Sprintf("known: %d", uint64(span))) {
			t.Fatalf("404 body should list the known span ids: %q", e.Error)
		}
	})
}
