//go:build unix

package main

import "syscall"

// processCPUNs returns the process's cumulative CPU time (user +
// system) in nanoseconds. The daemon executes one update at a time, so
// the delta across an update handler is that update's CPU cost.
func processCPUNs() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
