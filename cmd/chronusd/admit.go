package main

// The daemon side of the admission pipeline: POST /update no longer
// calls the solver inline — every request is enqueued on the admit
// engine, which reserves link capacity in the shared ledger, plans
// disjoint updates in parallel and batches conflicting ones through
// the joint validator. The handler stays synchronous by default
// (submit, then wait for the terminal state), so existing clients keep
// their one-shot semantics; {"async": true} returns 202 with the
// admission id to poll on GET /updates/{id}.

import (
	"fmt"
	"net/http"
	"strings"
	"time"

	chronus "github.com/chronus-sdn/chronus"
	"github.com/chronus-sdn/chronus/internal/admit"
	"github.com/chronus-sdn/chronus/internal/graph"
	"github.com/chronus-sdn/chronus/internal/health"
	"github.com/chronus-sdn/chronus/internal/obs"
)

// updateRequest is the POST /update body. The zero value (or just
// {"method": ...}) keeps the legacy behavior: execute the daemon's
// default aggregate-flow migration. Setting flow/init/fin instead
// submits a plan-only tenant update through the admission pipeline.
type updateRequest struct {
	Method   string   `json:"method"`
	Async    bool     `json:"async"`
	Tenant   string   `json:"tenant"`
	Flow     string   `json:"flow"`
	Demand   int64    `json:"demand"`
	Init     []string `json:"init"`
	Fin      []string `json:"fin"`
	Priority int      `json:"priority"`
}

// execResult is what the executor leaves behind for the synchronous
// handler's legacy response fields.
type execResult struct {
	Now           int64
	Congested     any
	OverloadTicks int64
	Drops         float64
}

// admitRequest translates the HTTP body into an admission request.
func (s *server) admitRequest(req *updateRequest) (admit.Request, error) {
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	method := strings.ToLower(req.Method)
	if method == "" {
		method = "chronus"
	}
	if req.Flow == "" {
		// The legacy one-shot migration of the emulated aggregate flow:
		// executed on the data plane, with its real link footprint held
		// in the ledger for the duration.
		return admit.Request{
			Tenant:   tenant,
			Flow:     s.flow.Name,
			Demand:   s.in.Demand,
			Init:     s.in.Init,
			Fin:      s.in.Fin,
			Priority: req.Priority,
			Execute:  true,
			Method:   method,
		}, nil
	}
	init, err := s.resolvePath(req.Init)
	if err != nil {
		return admit.Request{}, fmt.Errorf("init: %w", err)
	}
	fin, err := s.resolvePath(req.Fin)
	if err != nil {
		return admit.Request{}, fmt.Errorf("fin: %w", err)
	}
	return admit.Request{
		Tenant:   tenant,
		Flow:     req.Flow,
		Demand:   graph.Capacity(req.Demand),
		Init:     init,
		Fin:      fin,
		Priority: req.Priority,
		Method:   method,
	}, nil
}

// resolvePath maps switch names to a path on the daemon's topology.
func (s *server) resolvePath(names []string) (graph.Path, error) {
	if len(names) < 2 {
		return nil, fmt.Errorf("want at least 2 switch names, got %d", len(names))
	}
	p := make(graph.Path, len(names))
	for i, name := range names {
		id := s.in.G.Lookup(name)
		if id == chronus.Invalid {
			return nil, fmt.Errorf("unknown switch %q", name)
		}
		p[i] = id
	}
	return p, nil
}

// executeAdmitted is the admit engine's executor: it runs the legacy
// update path — root span, solve, timed/two-phase/barrier execution,
// settling advance, cost attribution — for an Execute-flagged update
// that reached the head of its wave.
func (s *server) executeAdmitted(u *admit.Update) (obs.SpanID, error) {
	s.mu.Lock()
	arrived, ok := s.arrivals[u.ID]
	delete(s.arrivals, u.ID)
	s.mu.Unlock()
	if !ok {
		arrived = time.Now()
	}
	meter := s.beginCost(arrived)
	root, err := s.executeUpdate(u.ID, u.Req.Tenant, u.Req.Method)
	if err != nil {
		s.endCost(meter, root, u.Req.Method, "error")
		return root, err
	}
	// Let the transition complete, then record ground truth for the
	// handler's response.
	s.tb.AdvanceBy(chronus.SimTime(2 * (s.in.Init.Delay(s.in.G) + s.in.Fin.Delay(s.in.G))))
	var drops float64
	s.tb.Do(func() {
		for _, id := range s.in.G.Nodes() {
			drops += s.tb.Net.Switch(id).Dropped()
		}
	})
	s.endCost(meter, root, u.Req.Method, "ok")
	s.mu.Lock()
	s.execs[u.ID] = execResult{
		Now:           int64(s.tb.Now()),
		Congested:     s.tb.Net.CongestedLinks(),
		OverloadTicks: int64(s.tb.Net.TotalOverloadTicks()),
		Drops:         drops,
	}
	s.mu.Unlock()
	return root, nil
}

// handleQueue serves GET /queue: the admission queue, per-tenant
// accounting and the capacity ledger's utilization.
func (s *server) handleQueue(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.admit.Snapshot())
}

// queueAdapter feeds the admit engine's snapshot to the health rules.
type queueAdapter struct{ e *admit.Engine }

func (q queueAdapter) QueueHealth() health.QueueStats {
	snap := q.e.Snapshot()
	out := health.QueueStats{
		Depth:            snap.Depth,
		Cap:              snap.Cap,
		OldestWaitTicks:  snap.OldestWaitTicks,
		SaturationStreak: snap.SaturationStreak,
	}
	for _, t := range snap.Tenants {
		out.Tenants = append(out.Tenants, health.TenantQueue{
			Tenant:      t.Tenant,
			Submitted:   t.Submitted,
			Refused:     t.Refused,
			Preempted:   t.Preempted,
			MaxPriority: t.MaxPriority,
		})
	}
	return out
}
