package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"github.com/chronus-sdn/chronus/internal/admit"
)

// planOnlyBody is a tenant plan-only update on the emulation topology:
// a 100 Mbps flow moving from the R2->R10 shortcut onto the forward
// line. Well under the 500 Mbps links, so it always admits.
func planOnlyBody(flow string) string {
	return fmt.Sprintf(`{"flow": %q, "tenant": "acme", "demand": 100,
		"init": ["R1", "R2", "R10"],
		"fin":  ["R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9", "R10"]}`, flow)
}

// TestDaemonAsyncUpdateImmediatePoll is the regression for the 404
// window: the id in the 202 body must resolve on GET /updates/{id} the
// moment the response arrives, and the update must reach "done" without
// any synchronous waiter.
func TestDaemonAsyncUpdateImmediatePoll(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/update", `{"method": "chronus", "async": true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async update: %s (%v)", resp.Status, body)
	}
	if body["state"] != "queued" {
		t.Fatalf("async body = %v, want state queued", body)
	}
	loc := resp.Header.Get("Location")
	id := int(body["id"].(float64))
	if loc != fmt.Sprintf("/updates/%d", id) {
		t.Fatalf("Location = %q, want /updates/%d", loc, id)
	}

	// Immediately after the 202 the id must already be registered.
	var view map[string]any
	getJSON(t, ts.URL+loc, &view)
	if view["state"] == nil {
		t.Fatalf("immediate poll returned no state: %v", view)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		getJSON(t, ts.URL+loc, &view)
		if s := view["state"].(string); s == "done" {
			break
		} else if s == "failed" || s == "refused" {
			t.Fatalf("async update ended %s: %v", s, view["reason"])
		}
		if time.Now().After(deadline) {
			t.Fatalf("async update stuck in %v", view["state"])
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view["span"] == nil || view["span"].(float64) == 0 {
		t.Fatalf("executed update has no span: %v", view)
	}
}

func TestDaemonPlanOnlyTenantUpdate(t *testing.T) {
	_, ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/update", planOnlyBody("web"))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan-only update: %s (%v)", resp.Status, body)
	}
	if body["state"] != "done" || body["tenant"] != "acme" {
		t.Fatalf("plan-only response = %v, want done for tenant acme", body)
	}
	sched, ok := body["schedule"].(map[string]any)
	if !ok || len(sched) == 0 {
		t.Fatalf("plan-only update carries no schedule: %v", body)
	}
	// A plan-only update must not consume the daemon's one-shot
	// aggregate migration slot.
	resp, body = postJSON(t, ts.URL+"/update", `{"method": "chronus"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate update after plan-only: %s (%v)", resp.Status, body)
	}
}

func TestDaemonQueueEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	if resp, body := postJSON(t, ts.URL+"/update", planOnlyBody("web")); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed update: %s (%v)", resp.Status, body)
	}
	var snap struct {
		Depth   int    `json:"depth"`
		Cap     int    `json:"cap"`
		Waves   uint64 `json:"waves"`
		Tenants []struct {
			Tenant  string `json:"tenant"`
			Planned int64  `json:"planned"`
		} `json:"tenants"`
		Ledger *admit.Utilization `json:"ledger"`
	}
	getJSON(t, ts.URL+"/queue", &snap)
	if snap.Cap <= 0 || snap.Depth != 0 || snap.Waves == 0 {
		t.Fatalf("queue snapshot = %+v", snap)
	}
	if snap.Ledger == nil || snap.Ledger.Holds != 0 {
		t.Fatalf("ledger utilization = %+v, want present with zero holds", snap.Ledger)
	}
	found := false
	for _, tn := range snap.Tenants {
		if tn.Tenant == "acme" && tn.Planned == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("tenant accounting missing acme: %+v", snap.Tenants)
	}
}

// TestDaemonBackpressure429: a full admission queue refuses an
// equal-priority submission with 429 Too Many Requests.
func TestDaemonBackpressure429(t *testing.T) {
	srv, ts := newTestServerOpts(t, serverOptions{Seed: 1, Wall: true, QueueCap: 1})
	// Occupy the only queue slot directly on the engine — no waiter, so
	// nothing drains it while the HTTP submission is judged.
	if _, err := srv.admit.Submit(admit.Request{
		Tenant: "bg", Flow: "filler", Demand: 100,
		Init: srv.in.Init, Fin: srv.in.Fin,
	}); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/update", planOnlyBody("late"))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submission against full queue: %s (%v)", resp.Status, body)
	}
	// The refusal is backpressure, not state: draining frees the slot
	// and the same request then succeeds.
	srv.admit.Drain()
	if resp, body = postJSON(t, ts.URL+"/update", planOnlyBody("late")); resp.StatusCode != http.StatusOK {
		t.Fatalf("resubmission after drain: %s (%v)", resp.Status, body)
	}
}

func TestDaemonHealthIncludesQueue(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		Level string          `json:"level"`
		Queue json.RawMessage `json:"queue"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if len(v.Queue) == 0 {
		t.Fatal("health verdict carries no queue stats")
	}
	var qs struct {
		Cap int `json:"cap"`
	}
	if err := json.Unmarshal(v.Queue, &qs); err != nil || qs.Cap <= 0 {
		t.Fatalf("queue stats = %s (err %v)", v.Queue, err)
	}
}
