package chronus

import (
	"github.com/chronus-sdn/chronus/internal/batch"
	"github.com/chronus-sdn/chronus/internal/core"
	"github.com/chronus-sdn/chronus/internal/dynflow"
)

// Multi-flow batch scheduling: sequential composition of single-flow
// Chronus updates over a shared topology, validated jointly. This extends
// the paper's single-flow model toward the multi-flow workloads of systems
// like SWAN and zUpdate.
type (
	// BatchFlow is one flow's update request within a batch.
	BatchFlow = batch.Flow
	// BatchPlan is a scheduled batch with its joint validation report.
	BatchPlan = batch.Plan
	// FlowUpdate pairs an instance with its schedule (joint validation
	// input and batch plan entry).
	FlowUpdate = dynflow.FlowUpdate
	// JointReport is the joint validator's verdict over several flows.
	JointReport = dynflow.JointReport
)

// BatchOptions configures SolveBatch.
type BatchOptions struct {
	// Start is the first tick of the batch.
	Start Tick
	// Scheme names the per-flow scheduler in the registry (see Schemes());
	// it must produce timed schedules. Empty derives "chronus" or
	// "chronus-fast" from Mode.
	Scheme string
	// Mode selects the greedy acceptance mode when Scheme is empty (zero
	// value: ModeExact).
	Mode Mode
	// Gap inserts idle ticks between consecutive flows' migrations.
	Gap Tick
}

// SolveBatch schedules updates for several flows on one topology: flows
// migrate one at a time against residual capacities (already-migrated flows
// occupy their final paths, waiting flows their initial paths), spaced so
// each migration's transients drain before the next begins. The returned
// plan is violation-free under the joint validator; an error is returned
// when a steady state is oversubscribed, a flow has no safe schedule on its
// residual topology, or a mixed configuration saturates a needed link (in
// which case reordering the flows may help).
func SolveBatch(g *Network, flows []BatchFlow, o BatchOptions) (*BatchPlan, error) {
	return batch.Solve(g, flows, batch.Options{Start: o.Start, Scheme: o.Scheme, Mode: core.Mode(o.Mode), Gap: o.Gap})
}

// ValidateJoint checks several flows' updates together: per-flow loop- and
// blackhole-freedom plus congestion-freedom of the summed loads.
func ValidateJoint(updates []FlowUpdate) (*JointReport, error) {
	return dynflow.ValidateJoint(updates)
}
